// Package wire is the sharded tier's network protocol: a length-prefixed
// binary codec for the router↔shard RPC messages plus the fleet-join
// handshake. Everything on the wire is flat little-endian int32/float32
// payloads encoded by hand — no reflection, no per-field allocation on
// the encode path — so encoded sizes are exact, cheap to compute without
// encoding (the router's byte accounting uses the Size functions), and
// float rows round-trip bit-for-bit, which is what keeps cross-process
// logits bitwise-identical to single-node serving.
//
// Framing: every message is [u32 length][u8 type][u32 reqid][payload],
// where length covers the type byte, the request id and the payload.
// The reqid tags the frame with the request it belongs to: connections
// are pipelined (many RPCs in flight per stream), replies may arrive
// out of order, and a reply echoes the reqid of the request it answers
// so the client's demux goroutine can match it to the right waiter.
// Handshake frames use reqid 0. Frames above MaxFrame — or too short to
// hold the type byte and reqid — are rejected before any allocation,
// and every decoder is strict — lengths must match the remaining bytes
// exactly, booleans must be 0 or 1, and trailing bytes are an error —
// so any accepted payload re-encodes to the same bytes (the fuzz
// harness pins this canonical-form property).
//
// Versioning rides in the Hello handshake, not per frame: the router
// opens every connection with a Hello carrying ProtoVersion plus the
// full fleet configuration (bounds, replica id, sampler seed, engine,
// plan, a hash of the model parameters), and the shard rejects anything
// it cannot serve bitwise-identically. After a HelloOK the stream
// carries tagged requests and replies in any interleaving.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ProtoVersion is bumped on any incompatible codec or handshake change;
// a shard rejects a Hello whose version it does not speak. Version 2
// added the per-frame request id (pipelined connections) and the
// replica fields in the Hello.
const ProtoVersion = 2

// MaxFrame bounds one frame (type byte + reqid + payload). A length
// prefix past it is a protocol violation, rejected before allocating
// anything.
const MaxFrame = 1 << 28

// headerLen is the frame overhead: u32 length + u8 type + u32 reqid.
const headerLen = 9

// minFrame is the least a frame's length prefix can claim: the type
// byte plus the request id. Anything shorter is hostile framing,
// rejected before any allocation.
const minFrame = 5

// MsgType tags one frame.
type MsgType byte

const (
	// MsgHello is the router→shard fleet-join handshake; it must be the
	// first frame on every connection.
	MsgHello MsgType = 1 + iota
	// MsgHelloOK accepts a Hello (empty payload).
	MsgHelloOK
	// MsgError carries a shard-side error string, both for a rejected
	// Hello and for a failed Expand/Compute.
	MsgError
	// MsgExpand / MsgExpandReply carry one Expand RPC.
	MsgExpand
	MsgExpandReply
	// MsgCompute / MsgComputeReply carry one Compute RPC.
	MsgCompute
	MsgComputeReply
)

// String names the message type for protocol errors.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "Hello"
	case MsgHelloOK:
		return "HelloOK"
	case MsgError:
		return "Error"
	case MsgExpand:
		return "Expand"
	case MsgExpandReply:
		return "ExpandReply"
	case MsgCompute:
		return "Compute"
	case MsgComputeReply:
		return "ComputeReply"
	}
	return fmt.Sprintf("MsgType(%d)", byte(t))
}

// Decode errors. Transport code treats them as protocol violations (the
// peer is broken, not slow), distinct from I/O errors.
var (
	ErrTruncated = errors.New("wire: truncated payload")
	ErrTrailing  = errors.New("wire: trailing bytes after payload")
	ErrOversize  = errors.New("wire: frame exceeds MaxFrame")
)

// ExpandArgs asks a shard to resolve one level's owned vertex span:
// which rows are cached (returned inline), and what the deterministic
// sampler's in-frontier is for the rest.
type ExpandArgs struct {
	Batch uint64 // trace id, threads obs spans through shard compute
	Ver   uint64 // model version the caller's batch is coherent at
	Level int    // 0 = input features, L = logits
	Dim   int    // row width at this level
	Verts []int32
}

// ExpandReply carries, per requested vertex: a hit flag plus the cached
// row, or (levels ≥ 1) the sampled source ids of the miss. Rows is flat
// [len(Verts)×Dim]; only hit rows are meaningful — except at level 0,
// where the shard gathers its owned feature rows so misses come back
// filled too and no second round trip is needed.
type ExpandReply struct {
	Hit  []bool
	Rows []float32
	Srcs [][]int32
}

// ComputeArgs asks a shard to run layer Level-1 for its owned miss
// targets. In is the ascending deduplicated level-(Level-1) vertex set
// the targets' blocks read (each target plus its sampled sources), and
// Rows their rows, flat [len(In)×InDim]. The shard re-derives each
// target's sampled slots with the same deterministic sampler the
// expansion used, so edge types and canonical per-target edge order come
// from its own CSR slice rather than riding the wire.
type ComputeArgs struct {
	Batch  uint64
	Ver    uint64
	Level  int
	InDim  int
	OutDim int
	Verts  []int32
	In     []int32
	Rows   []float32
}

// ComputeReply returns the computed rows, flat [len(Verts)×OutDim], with
// the between-layer activation already applied (ReLU below the top
// level), exactly as the single-node forward splices them.
type ComputeReply struct {
	Rows []float32
}

// Hello is the fleet-join handshake: everything a shard daemon must agree
// on before it can serve bitwise-identical rows — its identity and owned
// range in the fleet, the frozen graph/model shape, the deterministic
// sampler parameters, the execution engine, the tuned plan, and a hash of
// the router's model parameters (same checkpoint or no deal).
type Hello struct {
	Proto       uint32
	ShardID     int32
	Shards      int32
	Replica     int32 // replica index within the shard's replica set
	Replicas    int32 // replica count per shard (min 1)
	Lo, Hi      int32 // owned vertex range [Lo, Hi)
	NumVertices int64
	NumEdges    int64
	NumTypes    int32
	InDim       int32
	Hidden      int32
	OutDim      int32
	Layers      int32
	Fanouts     []int32
	Seed        uint64
	ParamSum    uint64 // FNV-1a over the model's parameter bits
	Kind        string // model kind, e.g. "RGCN"
	Engine      string // execution engine name ("" = blocked)
	Placement   string // boundary policy the router derived Lo/Hi with
	Plan        []byte // marshaled joint plan (joint.MarshalPlan JSON)
}

// ---------------------------------------------------------------------
// Encoding. Append* functions append one complete frame (header + type +
// reqid + payload) to dst and return the extended slice; Size* return
// exactly the number of bytes the matching Append* would add.

func appendHeader(dst []byte, t MsgType, reqid uint32, payloadLen int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen+minFrame))
	dst = append(dst, byte(t))
	return binary.LittleEndian.AppendUint32(dst, reqid)
}

func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }

func appendI32s(dst []byte, v []int32) []byte {
	dst = appendU32(dst, uint32(len(v)))
	for _, x := range v {
		dst = appendU32(dst, uint32(x))
	}
	return dst
}

func appendF32s(dst []byte, v []float32) []byte {
	dst = appendU32(dst, uint32(len(v)))
	for _, x := range v {
		dst = appendU32(dst, math.Float32bits(x))
	}
	return dst
}

func appendBools(dst []byte, v []bool) []byte {
	dst = appendU32(dst, uint32(len(v)))
	for _, x := range v {
		if x {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

func appendBytes(dst []byte, v []byte) []byte {
	dst = appendU32(dst, uint32(len(v)))
	return append(dst, v...)
}

func appendString(dst []byte, v string) []byte {
	dst = appendU32(dst, uint32(len(v)))
	return append(dst, v...)
}

// SizeExpandArgs is the exact frame size AppendExpandArgs produces.
func SizeExpandArgs(a *ExpandArgs) int {
	return headerLen + 8 + 8 + 4 + 4 + 4 + 4*len(a.Verts)
}

// AppendExpandArgs appends one Expand request frame tagged with reqid.
func AppendExpandArgs(dst []byte, reqid uint32, a *ExpandArgs) []byte {
	dst = appendHeader(dst, MsgExpand, reqid, SizeExpandArgs(a)-headerLen)
	dst = appendU64(dst, a.Batch)
	dst = appendU64(dst, a.Ver)
	dst = appendU32(dst, uint32(int32(a.Level)))
	dst = appendU32(dst, uint32(int32(a.Dim)))
	return appendI32s(dst, a.Verts)
}

// SizeExpandReply is the exact frame size AppendExpandReply produces.
func SizeExpandReply(r *ExpandReply) int {
	n := headerLen + 4 + len(r.Hit) + 4 + 4*len(r.Rows) + 4
	for _, s := range r.Srcs {
		n += 4 + 4*len(s)
	}
	return n
}

// AppendExpandReply appends one Expand reply frame echoing reqid.
func AppendExpandReply(dst []byte, reqid uint32, r *ExpandReply) []byte {
	dst = appendHeader(dst, MsgExpandReply, reqid, SizeExpandReply(r)-headerLen)
	dst = appendBools(dst, r.Hit)
	dst = appendF32s(dst, r.Rows)
	dst = appendU32(dst, uint32(len(r.Srcs)))
	for _, s := range r.Srcs {
		dst = appendI32s(dst, s)
	}
	return dst
}

// SizeComputeArgs is the exact frame size AppendComputeArgs produces.
func SizeComputeArgs(a *ComputeArgs) int {
	return headerLen + 8 + 8 + 4 + 4 + 4 +
		4 + 4*len(a.Verts) + 4 + 4*len(a.In) + 4 + 4*len(a.Rows)
}

// AppendComputeArgs appends one Compute request frame tagged with reqid.
func AppendComputeArgs(dst []byte, reqid uint32, a *ComputeArgs) []byte {
	dst = appendHeader(dst, MsgCompute, reqid, SizeComputeArgs(a)-headerLen)
	dst = appendU64(dst, a.Batch)
	dst = appendU64(dst, a.Ver)
	dst = appendU32(dst, uint32(int32(a.Level)))
	dst = appendU32(dst, uint32(int32(a.InDim)))
	dst = appendU32(dst, uint32(int32(a.OutDim)))
	dst = appendI32s(dst, a.Verts)
	dst = appendI32s(dst, a.In)
	return appendF32s(dst, a.Rows)
}

// SizeComputeReply is the exact frame size AppendComputeReply produces.
func SizeComputeReply(r *ComputeReply) int {
	return headerLen + 4 + 4*len(r.Rows)
}

// AppendComputeReply appends one Compute reply frame echoing reqid.
func AppendComputeReply(dst []byte, reqid uint32, r *ComputeReply) []byte {
	dst = appendHeader(dst, MsgComputeReply, reqid, SizeComputeReply(r)-headerLen)
	return appendF32s(dst, r.Rows)
}

// AppendHello appends one handshake frame (handshakes use reqid 0).
func AppendHello(dst []byte, h *Hello) []byte {
	// 12 u32 fields + 4 u64 fields + 4 length-prefixed variable fields.
	n := 4*12 + 8*4 + 4 + 4*len(h.Fanouts) +
		4 + len(h.Kind) + 4 + len(h.Engine) + 4 + len(h.Placement) + 4 + len(h.Plan)
	dst = appendHeader(dst, MsgHello, 0, n)
	dst = appendU32(dst, h.Proto)
	dst = appendU32(dst, uint32(h.ShardID))
	dst = appendU32(dst, uint32(h.Shards))
	dst = appendU32(dst, uint32(h.Replica))
	dst = appendU32(dst, uint32(h.Replicas))
	dst = appendU32(dst, uint32(h.Lo))
	dst = appendU32(dst, uint32(h.Hi))
	dst = appendU64(dst, uint64(h.NumVertices))
	dst = appendU64(dst, uint64(h.NumEdges))
	dst = appendU32(dst, uint32(h.NumTypes))
	dst = appendU32(dst, uint32(h.InDim))
	dst = appendU32(dst, uint32(h.Hidden))
	dst = appendU32(dst, uint32(h.OutDim))
	dst = appendU32(dst, uint32(h.Layers))
	dst = appendI32s(dst, h.Fanouts)
	dst = appendU64(dst, h.Seed)
	dst = appendU64(dst, h.ParamSum)
	dst = appendString(dst, h.Kind)
	dst = appendString(dst, h.Engine)
	dst = appendString(dst, h.Placement)
	return appendBytes(dst, h.Plan)
}

// AppendHelloOK appends the empty handshake acceptance frame (reqid 0).
func AppendHelloOK(dst []byte) []byte { return appendHeader(dst, MsgHelloOK, 0, 0) }

// AppendError appends one error frame carrying msg, echoing the reqid of
// the request it fails (0 for handshake errors).
func AppendError(dst []byte, reqid uint32, msg string) []byte {
	dst = appendHeader(dst, MsgError, reqid, 4+len(msg))
	return appendString(dst, msg)
}

// ---------------------------------------------------------------------
// Decoding. Every decoder is strict: exact lengths, 0/1 booleans, no
// trailing bytes — a deserialized request is validated shape-first so a
// malformed peer surfaces as a protocol error, never a panic.

type reader struct {
	p   []byte
	err error
}

func (r *reader) fail() bool { return r.err != nil }

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if len(r.p) < n {
		r.err = ErrTruncated
		return false
	}
	return true
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.p)
	r.p = r.p[4:]
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.p)
	r.p = r.p[8:]
	return v
}

// i32 decodes a sign-preserving 32-bit int (negative values survive the
// round trip so range validation can reject them descriptively).
func (r *reader) i32() int { return int(int32(r.u32())) }

func (r *reader) i32s() []int32 {
	n := int(r.u32())
	if r.fail() || !r.need(4*n) {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.p[4*i:]))
	}
	r.p = r.p[4*n:]
	return out
}

func (r *reader) f32s() []float32 {
	n := int(r.u32())
	if r.fail() || !r.need(4*n) {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(r.p[4*i:]))
	}
	r.p = r.p[4*n:]
	return out
}

func (r *reader) bools() []bool {
	n := int(r.u32())
	if r.fail() || !r.need(n) {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		switch r.p[i] {
		case 0:
		case 1:
			out[i] = true
		default:
			r.err = fmt.Errorf("wire: bool byte %d at %d", r.p[i], i)
			return nil
		}
	}
	r.p = r.p[n:]
	return out
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.fail() || !r.need(n) {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.p)
	r.p = r.p[n:]
	return out
}

func (r *reader) str() string {
	n := int(r.u32())
	if r.fail() || !r.need(n) {
		return ""
	}
	s := string(r.p[:n])
	r.p = r.p[n:]
	return s
}

// done rejects trailing bytes — strict framing keeps every accepted
// payload canonical.
func (r *reader) done() error {
	if r.err == nil && len(r.p) > 0 {
		r.err = ErrTrailing
	}
	return r.err
}

// DecodeExpandArgs decodes one Expand request payload.
func DecodeExpandArgs(p []byte) (*ExpandArgs, error) {
	r := reader{p: p}
	a := &ExpandArgs{
		Batch: r.u64(),
		Ver:   r.u64(),
		Level: r.i32(),
		Dim:   r.i32(),
		Verts: r.i32s(),
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return a, nil
}

// DecodeExpandReply decodes one Expand reply payload.
func DecodeExpandReply(p []byte) (*ExpandReply, error) {
	r := reader{p: p}
	rep := &ExpandReply{Hit: r.bools(), Rows: r.f32s()}
	n := int(r.u32())
	if !r.fail() && n > 0 {
		// Each entry needs at least its own length prefix.
		if !r.need(4 * n) {
			return nil, r.err
		}
		rep.Srcs = make([][]int32, n)
		for i := range rep.Srcs {
			rep.Srcs[i] = r.i32s()
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return rep, nil
}

// DecodeComputeArgs decodes one Compute request payload.
func DecodeComputeArgs(p []byte) (*ComputeArgs, error) {
	r := reader{p: p}
	a := &ComputeArgs{
		Batch:  r.u64(),
		Ver:    r.u64(),
		Level:  r.i32(),
		InDim:  r.i32(),
		OutDim: r.i32(),
		Verts:  r.i32s(),
		In:     r.i32s(),
		Rows:   r.f32s(),
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return a, nil
}

// DecodeComputeReply decodes one Compute reply payload.
func DecodeComputeReply(p []byte) (*ComputeReply, error) {
	r := reader{p: p}
	rep := &ComputeReply{Rows: r.f32s()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return rep, nil
}

// DecodeHello decodes one handshake payload.
func DecodeHello(p []byte) (*Hello, error) {
	r := reader{p: p}
	h := &Hello{
		Proto:       r.u32(),
		ShardID:     int32(r.u32()),
		Shards:      int32(r.u32()),
		Replica:     int32(r.u32()),
		Replicas:    int32(r.u32()),
		Lo:          int32(r.u32()),
		Hi:          int32(r.u32()),
		NumVertices: int64(r.u64()),
		NumEdges:    int64(r.u64()),
		NumTypes:    int32(r.u32()),
		InDim:       int32(r.u32()),
		Hidden:      int32(r.u32()),
		OutDim:      int32(r.u32()),
		Layers:      int32(r.u32()),
		Fanouts:     r.i32s(),
		Seed:        r.u64(),
		ParamSum:    r.u64(),
		Kind:        r.str(),
		Engine:      r.str(),
		Placement:   r.str(),
		Plan:        r.bytes(),
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return h, nil
}

// DecodeError decodes one error payload (best effort: a malformed error
// frame still yields a string describing that).
func DecodeError(p []byte) string {
	r := reader{p: p}
	s := r.str()
	if r.done() != nil {
		return fmt.Sprintf("malformed error frame (%d bytes)", len(p))
	}
	return s
}

// ---------------------------------------------------------------------
// Framing.

// ReadFrame reads one complete frame, returning its type, request id and
// payload. Hostile length prefixes — oversize, or too short to hold the
// type byte and reqid — are rejected before any allocation.
func ReadFrame(r io.Reader) (MsgType, uint32, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < minFrame {
		return 0, 0, nil, fmt.Errorf("wire: short frame (%d bytes, need at least %d)", n, minFrame)
	}
	if n > MaxFrame {
		return 0, 0, nil, fmt.Errorf("%w: %d bytes", ErrOversize, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, nil, err
	}
	return MsgType(buf[0]), binary.LittleEndian.Uint32(buf[1:]), buf[5:], nil
}
