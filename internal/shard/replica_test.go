package shard

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wisegraph/internal/fault"
)

// The replica battery: assignment grouping, the failover/hedge ladder
// over fake connections (deterministic, no sockets), health-score
// demotion and routing, winning-attempt-only byte accounting, and an
// in-process daemon-kill failover with bitwise parity.

func TestAssignReplicas(t *testing.T) {
	groups, err := AssignReplicas([]string{"a", "b", "c", "d"}, 2)
	if err != nil {
		t.Fatalf("AssignReplicas: %v", err)
	}
	if len(groups) != 2 || groups[0][0] != "a" || groups[0][1] != "b" || groups[1][0] != "c" || groups[1][1] != "d" {
		t.Fatalf("groups = %v, want [[a b] [c d]]", groups)
	}
	// R defaults to 1: every address is its own span.
	groups, err = AssignReplicas([]string{"a", "b"}, 0)
	if err != nil || len(groups) != 2 || len(groups[0]) != 1 {
		t.Fatalf("AssignReplicas(r=0) = %v, %v; want 2 singleton spans", groups, err)
	}
	if _, err := AssignReplicas([]string{"a", "b", "c"}, 2); err == nil {
		t.Fatal("3 addresses formed 2-way replica groups")
	}
	if _, err := AssignReplicas(nil, 1); err == nil {
		t.Fatal("empty address list accepted")
	}
}

// fakeConn is a scriptable replica: it can fail with a transport error,
// fail with a deterministic application error, or straggle for a fixed
// delay before answering (respecting hedge cancellation).
type fakeConn struct {
	calls    atomic.Uint64
	transErr atomic.Bool
	appErr   atomic.Bool
	delay    time.Duration
}

func (c *fakeConn) answer(ctx context.Context) error {
	c.calls.Add(1)
	if c.delay > 0 {
		select {
		case <-time.After(c.delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if c.transErr.Load() {
		return &TransportError{Addr: "fake", Err: errors.New("connection refused")}
	}
	if c.appErr.Load() {
		return errors.New("vertex 7 outside owned range")
	}
	return nil
}

func (c *fakeConn) Expand(ctx context.Context, args *ExpandArgs) (*ExpandReply, error) {
	if err := c.answer(ctx); err != nil {
		return nil, err
	}
	return &ExpandReply{Hit: []bool{true}, Rows: []float32{1}}, nil
}

func (c *fakeConn) Compute(ctx context.Context, args *ComputeArgs) (*ComputeReply, error) {
	if err := c.answer(ctx); err != nil {
		return nil, err
	}
	return &ComputeReply{Rows: []float32{1}}, nil
}

// fakeFleet wires one span's replica set out of fake conns — the routing
// layer with nothing underneath it.
func fakeFleet(t *testing.T, conns ...Conn) *Fleet {
	t.Helper()
	cfg := Config{Replicas: len(conns), Timeout: 100 * time.Millisecond}.withDefaults()
	f := &Fleet{cfg: cfg, bounds: []int32{0, 100}, start: time.Now()}
	f.conns = [][]Conn{conns}
	hs := make([]*replicaHealth, len(conns))
	for i := range hs {
		hs[i] = newReplicaHealth()
	}
	f.health = [][]*replicaHealth{hs}
	f.stats = []*shardStats{{}}
	return f
}

// TestReplicaFailoverDemotes: a replica that fails with transport errors
// is failed over immediately (zero surfaced errors), its health score is
// halved so replicaOrder stops picking it first, and it is NOT re-picked
// on later calls while a healthy replica answers.
func TestReplicaFailoverDemotes(t *testing.T) {
	dead, live := &fakeConn{}, &fakeConn{}
	dead.transErr.Store(true)
	f := fakeFleet(t, dead, live)

	for i := 0; i < 10; i++ {
		if _, err := f.callExpand(0, &ExpandArgs{Level: 0, Dim: 1, Verts: []int32{1}}); err != nil {
			t.Fatalf("call %d surfaced %v despite a healthy replica", i, err)
		}
	}
	if _, _, _, failures := f.Resilience(); failures != 0 {
		t.Fatalf("%d permanent failures with a healthy replica present", failures)
	}
	if hd, hl := f.Health(0, 0), f.Health(0, 1); hd >= hl || hd > healthDecay {
		t.Fatalf("dead replica health %v vs live %v — failure did not demote", hd, hl)
	}
	if got := f.replicaOrder(0)[0]; got != 1 {
		t.Fatalf("replicaOrder leads with demoted replica %d", got)
	}
	// Demoted means demoted: after its first failure the dead replica is
	// never ranked first again, so it sees at most that one call (plus any
	// hedge, which a fast live replica never leaves time for).
	if n := dead.calls.Load(); n > 1 {
		t.Fatalf("demoted replica was re-picked %d times", n)
	}
	st := f.Stats()[0]
	if len(st.Replicas) != 2 {
		t.Fatalf("stats carry %d replicas, want 2", len(st.Replicas))
	}
	if st.Replicas[0].Fails == 0 || st.Replicas[1].Wins == 0 {
		t.Fatalf("replica stats %+v don't reflect the failover", st.Replicas)
	}
}

// TestReplicaHealthRecovers: a demoted replica that starts answering
// again climbs back — health is a score, not a tombstone.
func TestReplicaHealthRecovers(t *testing.T) {
	flappy, live := &fakeConn{}, &fakeConn{}
	flappy.transErr.Store(true)
	f := fakeFleet(t, flappy, live)

	if _, err := f.callExpand(0, &ExpandArgs{Level: 0, Dim: 1, Verts: []int32{1}}); err != nil {
		t.Fatalf("callExpand: %v", err)
	}
	h := f.health[0][0]
	h.bad()
	h.bad() // deep demotion
	low := h.score()

	flappy.transErr.Store(false)
	for i := 0; i < 8; i++ {
		h.good()
	}
	if got := h.score(); got <= low || got < 0.9 {
		t.Fatalf("health %v after 8 successes from %v — recovery too slow", got, low)
	}
	if got := h.score(); got > 1 {
		t.Fatalf("health %v recovered past 1", got)
	}
}

// TestReplicaHedgeOnStraggler: a straggling leader is hedged after
// Timeout/4 — the fast replica's answer wins and the call never waits
// out the straggle.
func TestReplicaHedgeOnStraggler(t *testing.T) {
	slow := &fakeConn{delay: 2 * time.Second}
	fast := &fakeConn{}
	f := fakeFleet(t, slow, fast)

	start := time.Now()
	for i := 0; i < 6; i++ {
		if _, err := f.callExpand(0, &ExpandArgs{Level: 0, Dim: 1, Verts: []int32{1}}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// Rotation starts roughly half the calls on the straggler; each such
	// call pays one hedge delay (25ms), never the 2s straggle.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("6 calls took %v — a straggler was waited out instead of hedged", elapsed)
	}
	if _, hedges, _, failures := f.Resilience(); hedges == 0 || failures != 0 {
		t.Fatalf("hedges=%d failures=%d, want >0 hedges and 0 failures", hedges, failures)
	}
	if fast.calls.Load() == 0 {
		t.Fatal("fast replica never hedged in")
	}
}

// TestReplicaAppErrorNotRetriedNotDemoted: a deterministic application
// error surfaces after one pass over the replica set — no outer ladder
// retries burned, no health demotion (every replica would answer the
// same way, so it says nothing about availability).
func TestReplicaAppErrorNotRetriedNotDemoted(t *testing.T) {
	a, b := &fakeConn{}, &fakeConn{}
	a.appErr.Store(true)
	b.appErr.Store(true)
	f := fakeFleet(t, a, b)

	_, err := f.callExpand(0, &ExpandArgs{Level: 0, Dim: 1, Verts: []int32{7}})
	if err == nil || !strings.Contains(err.Error(), "outside owned range") {
		t.Fatalf("error = %v, want the application error", err)
	}
	if n := a.calls.Load() + b.calls.Load(); n != 2 {
		t.Fatalf("%d attempts for a deterministic error, want exactly one per replica", n)
	}
	if ha, hb := f.Health(0, 0), f.Health(0, 1); ha != 1 || hb != 1 {
		t.Fatalf("app error demoted health to %v/%v", ha, hb)
	}
}

// TestByteAccountingTimeoutRetry pins the double-booking fix: a Forward
// whose RPCs hit injected timeout-retries must book exactly the bytes of
// a fault-free run — only the winning attempt of each call counts, never
// a timed-out or retried loser.
func TestByteAccountingTimeoutRetry(t *testing.T) {
	g := testGraph(t, 100, 600, 6)
	seeds := []int32{0, 13, 50, 99}

	clean := testFleet(t, g, 2, 2, 0)
	want := forwardData(t, clean, seeds)
	var wantIn, wantOut uint64
	for _, st := range clean.Stats() {
		wantIn += st.BytesIn
		wantOut += st.BytesOut
	}
	if wantIn == 0 || wantOut == 0 {
		t.Fatalf("clean run booked bytesIn=%d bytesOut=%d", wantIn, wantOut)
	}

	faulted := testFleet(t, g, 2, 2, 0)
	faulted.cfg.Timeout = time.Millisecond
	var got []float32
	fault.WithSchedule(&fault.Schedule{
		Seed: 1,
		Sites: map[string]fault.SiteConfig{
			fault.SiteShardRPC: {LatencyRate: 0.5, Delay: 500 * time.Millisecond},
		},
	}, func() {
		got = forwardData(t, faulted, seeds)
	})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logits[%d] = %v under timeout retries, want %v", i, got[i], want[i])
		}
	}
	_, _, timeouts, failures := faulted.Resilience()
	if timeouts == 0 {
		t.Fatal("schedule injected no timeouts — the retry path was never exercised")
	}
	if failures != 0 {
		t.Fatalf("%d permanent failures under retryable timeouts", failures)
	}
	var gotIn, gotOut uint64
	for _, st := range faulted.Stats() {
		gotIn += st.BytesIn
		gotOut += st.BytesOut
	}
	if gotIn != wantIn || gotOut != wantOut {
		t.Fatalf("faulted run booked in=%d out=%d, clean run in=%d out=%d — retried attempts double-booked",
			gotIn, gotOut, wantIn, wantOut)
	}
}

// TestInProcessReplicaParity: an in-process fleet with R=2 serves
// bitwise-identical logits to R=1 — replication must never change a bit,
// whichever replica's answer wins the rotation.
func TestInProcessReplicaParity(t *testing.T) {
	n := newTestNode(t, 100, 600, 6)
	seeds := []int32{0, 13, 50, 99}

	r1, err := NewFleet(n.csr, n.feats, n.g.NumTypes, n.model, n.plan, Config{
		Shards: 2, Replicas: 1, Workers: 2, Fanouts: []int{4, 4}, Seed: 3,
	})
	if err != nil {
		t.Fatalf("NewFleet(R=1): %v", err)
	}
	t.Cleanup(r1.Close)
	want := forwardData(t, r1, seeds)

	r2, err := NewFleet(n.csr, n.feats, n.g.NumTypes, n.model, n.plan, Config{
		Shards: 2, Replicas: 2, Workers: 2, Fanouts: []int{4, 4}, Seed: 3,
	})
	if err != nil {
		t.Fatalf("NewFleet(R=2): %v", err)
	}
	t.Cleanup(r2.Close)
	if r2.Replicas() != 2 {
		t.Fatalf("Replicas() = %d, want 2", r2.Replicas())
	}
	got := forwardData(t, r2, seeds)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logits[%d] = %v with R=2, want %v with R=1", i, got[i], want[i])
		}
	}
}

// TestRemoteReplicaKillFailover: two daemons replicate one span; one is
// killed (listener and every live connection torn down) and the next
// Forward must succeed with zero surfaced errors, bitwise-identical
// logits, and the dead replica demoted in the router's health table. The
// cross-process SIGKILL version lives in internal/serve.
func TestRemoteReplicaKillFailover(t *testing.T) {
	n := newTestNode(t, 100, 600, 6)
	seeds := []int32{0, 13, 50, 99}

	local, err := NewFleet(n.csr, n.feats, n.g.NumTypes, n.model, n.plan, fleetConfig())
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(local.Close)
	want := forwardData(t, local, seeds)

	type daemon struct {
		sv     *Server
		ln     net.Listener
		killed bool
	}
	ds := make([]*daemon, 2)
	addrs := make([]string, 2)
	for i := range addrs {
		sv := NewServer(n.csr, n.feats, n.g.NumTypes, n.model, NodeConfig{Workers: 2})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		go sv.Serve(ln)
		ds[i] = &daemon{sv: sv, ln: ln}
		addrs[i] = ln.Addr().String()
	}
	kill := func(d *daemon) {
		if !d.killed {
			d.killed = true
			d.ln.Close()
			d.sv.Close()
		}
	}
	t.Cleanup(func() {
		for _, d := range ds {
			kill(d)
		}
	})

	cfg := fleetConfig()
	cfg.Replicas = 2
	remote, err := NewRemoteFleet(n.csr, n.feats, n.g.NumTypes, n.model, n.plan, cfg, addrs)
	if err != nil {
		t.Fatalf("NewRemoteFleet: %v", err)
	}
	t.Cleanup(remote.Close)
	if remote.Size() != 1 || remote.Replicas() != 2 {
		t.Fatalf("fleet is %d spans x %d replicas, want 1x2", remote.Size(), remote.Replicas())
	}
	got := forwardData(t, remote, seeds)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("logits[%d] = %v with both replicas up, want %v", i, got[i], want[i])
		}
	}

	// Kill replica 0: stop accepting and tear down its live connections —
	// the router sees broken streams and refused dials from here on.
	kill(ds[0])

	for round := 0; round < 4; round++ {
		got = forwardData(t, remote, seeds)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d logits[%d] = %v after replica kill, want %v", round, i, got[i], want[i])
			}
		}
	}
	if _, _, _, failures := remote.Resilience(); failures != 0 {
		t.Fatalf("%d surfaced failures with a live replica remaining", failures)
	}
	if hd, hl := remote.Health(0, 0), remote.Health(0, 1); hd >= hl {
		t.Fatalf("dead replica health %v not demoted below live %v", hd, hl)
	}
}
