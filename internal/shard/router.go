package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wisegraph/internal/device"
	"wisegraph/internal/fault"
	"wisegraph/internal/graph"
	"wisegraph/internal/hotcache"
	"wisegraph/internal/joint"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/shard/wire"
	"wisegraph/internal/tensor"
)

// Config sizes a fleet. The serve engine fills it from its own resolved
// options so sharded and single-node serving share every knob.
type Config struct {
	// Shards is the span count — how many contiguous vertex ranges the
	// graph splits into (min 1).
	Shards int
	// Replicas is how many interchangeable nodes serve each span (min 1;
	// 1 = unreplicated). Every replica of a span holds the same graph
	// slice, plan and parameters, so reads fail over and hedge freely —
	// both RPC kinds are pure functions of (request, model version), so
	// any replica's answer is bitwise the answer.
	Replicas int
	// Placement picks the boundary policy (see Boundaries).
	Placement Placement
	// Workers is the per-shard RPC worker pool size.
	Workers int
	// Fanouts are the per-layer sampling fan-outs, Seed the deterministic
	// sampler key, Engine the execution engine, Spec the simulated device
	// — all identical to the single-node serve options, which is what the
	// bitwise-parity guarantee rests on.
	Fanouts []int
	Seed    uint64
	Engine  string
	Spec    *device.Spec
	// CacheBudget is the PER-SHARD hot-vertex cache budget in bytes: each
	// simulated node brings its own RAM, so fleet cache capacity scales
	// with the shard count — the aggregate-capacity win that lets a fleet
	// hold a hot set no single node can.
	CacheBudget int64
	CacheShards int
	// Timeout is the per-RPC deadline: a modeled straggle at or beyond it
	// counts as a timeout and takes the retry path (default 250ms). The
	// replica hedge delay derives from it (Timeout/4).
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Spec == nil {
		spec := device.A100()
		c.Spec = &spec
	}
	if c.Timeout <= 0 {
		c.Timeout = 250 * time.Millisecond
	}
	return c
}

// Retry ladder for router→shard RPCs, mirroring the distributed trainer's
// exchange ladder: rpcAttempts tries per call, exponential backoff from
// rpcBackoffBase with deterministic jitter on injected errors/corruption,
// and a straggle past rpcHedgeAfter is abandoned for an immediate hedged
// re-issue (safe: both RPCs are idempotent pure functions of the request
// and model version). A straggle at or past the configured Timeout is a
// timeout — counted separately and retried.
//
// With replicas the ladder gains a layer underneath: each attempt is a
// hedged issue across the span's replica set (healthiest first, a real
// wall-clock hedge after Timeout/4, immediate failover on error), so the
// outer retries only fire when EVERY replica of a span failed.
const (
	rpcAttempts    = 5
	rpcBackoffBase = 100 * time.Microsecond
	rpcHedgeAfter  = time.Millisecond
)

// Per-replica health scoring: a score in (healthFloor, 1], recovered
// multiplicatively toward 1 on success and halved on transport failure.
// Replica order quantizes the score to eighths so healthy replicas stay
// interchangeable (rotation spreads load) while a flapping daemon sinks
// below the pack after one failure and climbs back only by answering.
const (
	healthRecover = 0.25
	healthDecay   = 0.5
	healthFloor   = 1.0 / 1024
)

// replicaHealth is one replica's routing score plus win/fail counters.
type replicaHealth struct {
	bits  atomic.Uint64 // math.Float64bits of the score
	wins  atomic.Uint64
	fails atomic.Uint64
}

func newReplicaHealth() *replicaHealth {
	h := &replicaHealth{}
	h.bits.Store(math.Float64bits(1))
	return h
}

func (h *replicaHealth) score() float64 { return math.Float64frombits(h.bits.Load()) }

func (h *replicaHealth) good() {
	h.wins.Add(1)
	for {
		old := h.bits.Load()
		s := math.Float64frombits(old)
		s += (1 - s) * healthRecover
		if h.bits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

func (h *replicaHealth) bad() {
	h.fails.Add(1)
	for {
		old := h.bits.Load()
		s := math.Float64frombits(old) * healthDecay
		if s < healthFloor {
			s = healthFloor
		}
		if h.bits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// shardStats is the router-side accounting for one span.
type shardStats struct {
	rot      atomic.Uint64 // rotation spreading load across equal-health replicas
	rpcs     atomic.Uint64
	computes atomic.Uint64
	retries  atomic.Uint64
	hedges   atomic.Uint64
	timeouts atomic.Uint64
	failures atomic.Uint64
	bytesIn  atomic.Uint64 // reply bytes router←shard
	bytesOut atomic.Uint64 // request bytes router→shard
	lat      obs.Histogram
}

// ReplicaStats is one replica's routing view: its health score and how
// often it won (answered a call the router used) or failed.
type ReplicaStats struct {
	Replica int     `json:"replica"`
	Health  float64 `json:"health"`
	Wins    uint64  `json:"wins"`
	Fails   uint64  `json:"fails"`
}

// Stats is one span's externally visible snapshot: ownership range,
// router-side RPC traffic and resilience counters, the shard's cache
// accounting, and the per-replica health scores. wgserve-bench records
// one per span in its -json output.
type Stats struct {
	ID       int     `json:"id"`
	Lo       int32   `json:"lo"`
	Hi       int32   `json:"hi"`
	RPCs     uint64  `json:"rpcs"`
	Computes uint64  `json:"computes"`
	QPS      float64 `json:"qps"` // RPCs per second of fleet uptime
	P50Ms    float64 `json:"p50Ms"`
	P99Ms    float64 `json:"p99Ms"`
	Retries  uint64  `json:"retries"`
	Hedges   uint64  `json:"hedges"`
	Timeouts uint64  `json:"timeouts"`
	Failures uint64  `json:"failures"`
	BytesIn  uint64  `json:"bytesIn"`
	BytesOut uint64  `json:"bytesOut"`
	InFlight int64   `json:"inFlight"`

	CacheHits    uint64 `json:"cacheHits"`
	CacheMisses  uint64 `json:"cacheMisses"`
	CacheBytes   int64  `json:"cacheBytes"`
	CacheEntries int    `json:"cacheEntries"`

	Replicas []ReplicaStats `json:"replicas,omitempty"`
}

// Fleet is the router front-end plus its shards: it partitions the vertex
// space, fans each micro-batch's leveled frontier out to the owners,
// aggregates the partial per-layer rows, and absorbs slow or failed
// shards through the hedging ladder. One Fleet serves one frozen
// (graph, features, plan); the model parameters behind src may be swapped
// by serve.Reload under its model lock.
//
// A fleet is either in-process (NewFleet: it owns the shards, conns are
// the shards themselves) or remote (NewRemoteFleet: shards live in
// wisegraph-shard daemons, conns are tcpConns). All routing flows through
// Conn, so Forward and the parity guarantee are transport-blind.
//
// Everything replica-shaped is indexed [span][replica]: conns[s][r] is
// replica r of span s, health[s][r] its routing score. Unreplicated
// fleets are the R=1 degenerate case — no hedge timers, no failover, the
// exact pre-replication behavior.
type Fleet struct {
	cfg    Config
	csr    *graph.CSR
	feats  *tensor.Tensor
	ntypes int
	src    *nn.Model
	plan   *joint.Result

	bounds []int32
	shards [][]*Shard // nil for a remote fleet
	conns  [][]Conn
	health [][]*replicaHealth
	stats  []*shardStats
	start  time.Time
}

// NewFleet splits csr's vertex space across cfg.Shards spans, each served
// by cfg.Replicas in-process shard nodes, and starts every shard's worker
// pool. ntypes is the parent graph's edge-type count (shard-rebuilt
// blocks must declare it exactly as the single-node forward does).
func NewFleet(csr *graph.CSR, feats *tensor.Tensor, ntypes int, src *nn.Model, plan *joint.Result, cfg Config) (*Fleet, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Fanouts) != src.Cfg.Layers {
		return nil, fmt.Errorf("shard: %d fan-outs for a %d-layer model", len(cfg.Fanouts), src.Cfg.Layers)
	}
	f := &Fleet{
		cfg: cfg, csr: csr, feats: feats, ntypes: ntypes, src: src, plan: plan,
		bounds: Boundaries(csr, cfg.Shards, cfg.Placement, src.Cfg.InDim),
		start:  time.Now(),
	}
	for i := 0; i < cfg.Shards; i++ {
		var group []*Shard
		var conns []Conn
		var hs []*replicaHealth
		for r := 0; r < cfg.Replicas; r++ {
			s, err := newShard(i, f.bounds[i], f.bounds[i+1], f)
			if err != nil {
				f.shards = append(f.shards, group)
				f.Close()
				return nil, err
			}
			group = append(group, s)
			conns = append(conns, s)
			hs = append(hs, newReplicaHealth())
		}
		f.shards = append(f.shards, group)
		f.conns = append(f.conns, conns)
		f.health = append(f.health, hs)
		f.stats = append(f.stats, &shardStats{})
	}
	return f, nil
}

// NewRemoteFleet builds a router over wisegraph-shard daemons. The flat
// address list groups into cfg.Replicas-way replica sets per span
// (AssignReplicas order: all replicas of span 0, then span 1, ...). The
// router derives the same boundaries the daemons will recompute, then
// dials each daemon with a Hello carrying the full fleet configuration
// (identity incl. replica id, bounds, graph/model shape, sampler seed,
// engine, marshaled plan, parameter hash) — any daemon that cannot serve
// bitwise-identically rejects it and construction fails.
func NewRemoteFleet(csr *graph.CSR, feats *tensor.Tensor, ntypes int, src *nn.Model, plan *joint.Result, cfg Config, addrs []string) (*Fleet, error) {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	groups, err := AssignReplicas(addrs, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	cfg.Shards = len(groups)
	cfg = cfg.withDefaults()
	if len(cfg.Fanouts) != src.Cfg.Layers {
		return nil, fmt.Errorf("shard: %d fan-outs for a %d-layer model", len(cfg.Fanouts), src.Cfg.Layers)
	}
	planBytes, err := plan.MarshalPlan()
	if err != nil {
		return nil, fmt.Errorf("shard: marshal plan: %w", err)
	}
	f := &Fleet{
		cfg: cfg, csr: csr, feats: feats, ntypes: ntypes, src: src, plan: plan,
		bounds: Boundaries(csr, cfg.Shards, cfg.Placement, src.Cfg.InDim),
		start:  time.Now(),
	}
	fanouts := make([]int32, len(cfg.Fanouts))
	for i, fo := range cfg.Fanouts {
		fanouts[i] = int32(fo)
	}
	sum := ParamSum(src)
	for i, group := range groups {
		var conns []Conn
		var hs []*replicaHealth
		for r, addr := range group {
			h := &wire.Hello{
				Proto:       wire.ProtoVersion,
				ShardID:     int32(i),
				Shards:      int32(cfg.Shards),
				Replica:     int32(r),
				Replicas:    int32(cfg.Replicas),
				Lo:          f.bounds[i],
				Hi:          f.bounds[i+1],
				NumVertices: int64(len(csr.RowPtr) - 1),
				NumEdges:    int64(len(csr.Col)),
				NumTypes:    int32(ntypes),
				InDim:       int32(src.Cfg.InDim),
				Hidden:      int32(src.Cfg.Hidden),
				OutDim:      int32(src.Cfg.OutDim),
				Layers:      int32(src.Cfg.Layers),
				Fanouts:     fanouts,
				Seed:        cfg.Seed,
				ParamSum:    sum,
				Kind:        src.Cfg.Kind.String(),
				Engine:      cfg.Engine,
				Placement:   cfg.Placement.String(),
				Plan:        planBytes,
			}
			c, err := newTCPConn(addr, h, cfg.Timeout)
			if err != nil {
				f.conns = append(f.conns, conns)
				f.Close()
				return nil, err
			}
			conns = append(conns, c)
			hs = append(hs, newReplicaHealth())
		}
		f.conns = append(f.conns, conns)
		f.health = append(f.health, hs)
		f.stats = append(f.stats, &shardStats{})
	}
	return f, nil
}

// Remote reports whether the shards live in separate processes.
func (f *Fleet) Remote() bool { return len(f.shards) == 0 && len(f.conns) > 0 }

// Close drains every in-process shard's worker pool and drops every
// remote connection. Callers must guarantee no Forward is in flight or
// will be issued again.
func (f *Fleet) Close() {
	for _, group := range f.shards {
		for _, s := range group {
			s.Close()
		}
	}
	for _, group := range f.conns {
		for _, c := range group {
			if tc, ok := c.(*tcpConn); ok {
				tc.close()
			}
		}
	}
}

// Size returns the span count.
func (f *Fleet) Size() int { return len(f.conns) }

// Replicas returns the per-span replica count.
func (f *Fleet) Replicas() int { return f.cfg.Replicas }

// Bounds returns the contiguous ownership boundaries (len Size()+1).
func (f *Fleet) Bounds() []int32 { return f.bounds }

// Placement returns the boundary policy in effect.
func (f *Fleet) Placement() Placement { return f.cfg.Placement }

// InFlight sums admitted-but-unanswered RPCs across all shards — the
// shard half of the fleet-wide drain invariant (the router half is the
// serve engine's own in-flight count).
func (f *Fleet) InFlight() int64 {
	var n int64
	for _, group := range f.shards {
		for _, s := range group {
			n += s.InFlight()
		}
	}
	return n
}

// InvalidateTo flushes every in-process shard's cache to the new model
// version. serve.Reload calls it inside its model critical section, so no
// batch tagged with the new version can race the sweep. Remote shards own
// their checkpoints, so reload (and with it this sweep) is rejected one
// layer up for remote fleets; here it is simply a no-op.
func (f *Fleet) InvalidateTo(ver uint64) {
	for _, group := range f.shards {
		for _, s := range group {
			s.cache.InvalidateTo(ver)
		}
	}
}

// CacheStats aggregates the per-shard caches into one fleet-wide view
// (capacity sums too: each shard — every replica — brings its own
// budget).
func (f *Fleet) CacheStats() hotcache.Stats {
	var t hotcache.Stats
	for _, group := range f.shards {
		for _, s := range group {
			cs := s.cache.Snapshot()
			t.Hits += cs.Hits
			t.Misses += cs.Misses
			t.Admitted += cs.Admitted
			t.Evicted += cs.Evicted
			t.Rejected += cs.Rejected
			t.Flushes += cs.Flushes
			t.Bytes += cs.Bytes
			t.Entries += cs.Entries
			t.Capacity += cs.Capacity
		}
	}
	return t
}

// Devices returns every shard worker's simulated device so the serve
// metrics can aggregate fleet compute exactly like worker compute.
func (f *Fleet) Devices() []*device.Device {
	var out []*device.Device
	for _, group := range f.shards {
		for _, s := range group {
			out = append(out, s.devs...)
		}
	}
	return out
}

// Health returns replica r of span s's current routing score (tests and
// metrics read it; routing itself goes through replicaOrder).
func (f *Fleet) Health(s, r int) float64 { return f.health[s][r].score() }

// Stats snapshots every span. For a remote fleet the shard-side fields
// (in-flight, cache) stay zero — those live in the daemons, which serve
// them on their own /metrics endpoint; the router-side traffic and
// resilience counters are exact either way (byte counts are real encoded
// frame sizes on both transports, booked once per winning attempt).
func (f *Fleet) Stats() []Stats {
	up := time.Since(f.start).Seconds()
	out := make([]Stats, len(f.stats))
	for i, st := range f.stats {
		o := Stats{
			ID: i, Lo: f.bounds[i], Hi: f.bounds[i+1],
			RPCs:     st.rpcs.Load(),
			Computes: st.computes.Load(),
			P50Ms:    float64(st.lat.Quantile(0.50)) / 1e6,
			P99Ms:    float64(st.lat.Quantile(0.99)) / 1e6,
			Retries:  st.retries.Load(),
			Hedges:   st.hedges.Load(),
			Timeouts: st.timeouts.Load(),
			Failures: st.failures.Load(),
			BytesIn:  st.bytesIn.Load(),
			BytesOut: st.bytesOut.Load(),
		}
		for r, h := range f.health[i] {
			o.Replicas = append(o.Replicas, ReplicaStats{
				Replica: r,
				Health:  h.score(),
				Wins:    h.wins.Load(),
				Fails:   h.fails.Load(),
			})
		}
		if i < len(f.shards) {
			for _, s := range f.shards[i] {
				cs := s.cache.Snapshot()
				o.InFlight += s.InFlight()
				o.CacheHits += cs.Hits
				o.CacheMisses += cs.Misses
				o.CacheBytes += cs.Bytes
				o.CacheEntries += cs.Entries
			}
		}
		if up > 0 {
			o.QPS = float64(o.RPCs) / up
		}
		out[i] = o
	}
	return out
}

// Resilience sums the router-side resilience counters across spans.
func (f *Fleet) Resilience() (retries, hedges, timeouts, failures uint64) {
	for _, st := range f.stats {
		retries += st.retries.Load()
		hedges += st.hedges.Load()
		timeouts += st.timeouts.Load()
		failures += st.failures.Load()
	}
	return
}

// replicaOrder ranks span s's replicas for the next issue: healthiest
// first with scores quantized to eighths, so equally healthy replicas
// stay interchangeable and the rotation counter spreads load across them
// instead of hammering replica 0. The counter is PER SPAN: spans issue
// their calls in near-lockstep (one goroutine per owned span, every
// level), so a fleet-global counter would hand every span the same
// parity forever and one replica of each span would never see traffic.
func (f *Fleet) replicaOrder(s int) []int {
	n := len(f.conns[s])
	if n == 1 {
		return []int{0}
	}
	rot := int(f.stats[s].rot.Add(1))
	order := make([]int, n)
	for i := range order {
		order[i] = (rot + i) % n
	}
	q := func(r int) int { return int(f.health[s][r].score() * 8) }
	sort.SliceStable(order, func(a, b int) bool { return q(order[a]) > q(order[b]) })
	return order
}

// observe feeds one attempt's outcome into the replica's health score.
// Only transport errors demote: an application error from the shard
// (ownership or protocol violation) is a deterministic property of the
// request — every replica would answer it identically, so it says
// nothing about this replica's availability.
func (f *Fleet) observe(s, r int, err error) {
	h := f.health[s][r]
	if err == nil {
		h.good()
		return
	}
	var te *TransportError
	if errors.As(err, &te) {
		h.bad()
	}
}

// issue runs one RPC attempt against span s's replica set: the healthiest
// replica fires first; a real wall-clock hedge (Timeout/4) launches the
// next-ranked replica if the leader stalls, and an error from any
// launched replica fails over to the next immediately. First success
// wins — the shared context is canceled so losers stop waiting (the TCP
// transport frees the window slot and later drops the stale reply by
// reqid; the in-process transport abandons the reply wait). Only when
// every replica has failed does an error surface to the retry ladder
// above. With one replica this collapses to a plain call — no timer, no
// extra goroutine handoff cost beyond one.
//
// issue returns only the winning attempt's value: byte accounting and
// row splicing upstream see exactly one reply per successful call, never
// a loser's — that is the fix for the double-booked Expand bytes the
// old shared-reply capture allowed under timeout retries.
func (f *Fleet) issue(s int, do func(context.Context, Conn) (any, error)) (any, error) {
	order := f.replicaOrder(s)
	conns := f.conns[s]
	if len(order) == 1 {
		v, err := do(context.Background(), conns[order[0]])
		f.observe(s, order[0], err)
		if err != nil {
			f.noteTimeout(s, err)
		}
		return v, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		r   int
		v   any
		err error
	}
	ch := make(chan result, len(order))
	launched, pending := 0, 0
	launch := func() {
		r := order[launched]
		launched++
		pending++
		go func() {
			v, err := do(ctx, conns[r])
			ch <- result{r: r, v: v, err: err}
		}()
	}
	launch()
	hedge := time.NewTimer(f.cfg.Timeout / 4)
	defer hedge.Stop()

	var appErr, transErr error
	for {
		select {
		case <-hedge.C:
			if launched < len(order) {
				f.stats[s].hedges.Add(1)
				launch()
				hedge.Reset(f.cfg.Timeout / 4)
			}
		case res := <-ch:
			pending--
			f.observe(s, res.r, res.err)
			if res.err == nil {
				return res.v, nil
			}
			f.noteTimeout(s, res.err)
			var te *TransportError
			if errors.As(res.err, &te) {
				transErr = res.err
			} else if appErr == nil {
				appErr = res.err
			}
			if launched < len(order) {
				// Failover: don't wait for the hedge timer once a replica
				// has definitively failed.
				f.stats[s].retries.Add(1)
				launch()
			} else if pending == 0 {
				// All replicas answered with errors. A deterministic
				// application error beats a transport error: it tells the
				// caller the request itself is wrong, and retrying won't
				// change it.
				if appErr != nil {
					return nil, appErr
				}
				return nil, transErr
			}
		}
	}
}

// noteTimeout books a transport timeout against the span's counter.
func (f *Fleet) noteTimeout(s int, err error) {
	var te *TransportError
	if errors.As(err, &te) && te.Timeout {
		f.stats[s].timeouts.Add(1)
	}
}

// call runs one RPC through the shard.rpc fault site and the retry/hedge/
// timeout ladder, returning the winning attempt's reply. do must be
// idempotent (both RPC kinds are). Two error classes come back from an
// issue: a TransportError (dial failure, broken stream, deadline on the
// TCP transport) is retryable — the conn redials and the RPC re-issues
// under the same ladder that absorbs injected faults — while an
// application error from the shard is deterministic (ownership or
// protocol violation) and surfaces immediately instead of burning
// retries.
func (f *Fleet) call(s int, do func(context.Context, Conn) (any, error)) (any, error) {
	st := f.stats[s]
	st.rpcs.Add(1)
	t0 := time.Now()
	defer func() { st.lat.Observe(time.Since(t0)) }()
	backoff := rpcBackoffBase
	for attempt := 0; attempt < rpcAttempts; attempt++ {
		flt := fault.Check(fault.SiteShardRPC)
		if flt != nil && flt.Kind == fault.KindLatency && flt.Delay < f.cfg.Timeout {
			if flt.Delay >= rpcHedgeAfter {
				// Hedge: abandon the straggler and re-issue immediately.
				// The abandoned attempt costs nothing — the simulated RPC
				// never reached the shard.
				st.hedges.Add(1)
				flt = fault.Check(fault.SiteShardRPC)
				if flt != nil && flt.Kind == fault.KindLatency && flt.Delay < f.cfg.Timeout {
					// The hedge straggles too (short of the deadline):
					// wait it out, it still succeeds.
					time.Sleep(flt.Delay)
					flt = nil
				}
			} else {
				time.Sleep(flt.Delay)
				flt = nil
			}
		}
		if flt != nil && flt.Kind == fault.KindLatency {
			// A modeled straggle at or past the per-RPC deadline: the
			// router gives up on this attempt without sleeping it out.
			st.timeouts.Add(1)
			flt = &fault.Fault{Site: flt.Site, Kind: fault.KindError, Seq: flt.Seq}
		}
		if flt == nil {
			v, err := f.issue(s, do)
			if err == nil {
				return v, nil
			}
			var te *TransportError
			if errors.As(err, &te) && attempt < rpcAttempts-1 {
				st.retries.Add(1)
				time.Sleep(backoff)
				backoff *= 2
				continue
			}
			st.failures.Add(1)
			return nil, err
		}
		// Injected error, corruption, or timeout: back off and retry.
		if attempt < rpcAttempts-1 {
			st.retries.Add(1)
			jitter := time.Duration(uint64(backoff) * (flt.Seq%128 + 128) / 256)
			time.Sleep(jitter)
			backoff *= 2
		} else {
			st.failures.Add(1)
			return nil, fmt.Errorf("shard: rpc to shard %d failed after %d attempts: %w",
				s, rpcAttempts, flt.Err())
		}
	}
	return nil, nil
}

// callExpand runs one Expand through the full ladder and returns ONLY the
// winning attempt's reply — concurrent hedged losers never leak a reply
// out, so the caller books request/reply bytes exactly once per call.
func (f *Fleet) callExpand(s int, args *ExpandArgs) (*ExpandReply, error) {
	v, err := f.call(s, func(ctx context.Context, c Conn) (any, error) {
		rep, err := c.Expand(ctx, args)
		return rep, err
	})
	if err != nil {
		return nil, err
	}
	return v.(*ExpandReply), nil
}

// callCompute is callExpand's Compute twin.
func (f *Fleet) callCompute(s int, args *ComputeArgs) (*ComputeReply, error) {
	v, err := f.call(s, func(ctx context.Context, c Conn) (any, error) {
		rep, err := c.Compute(ctx, args)
		return rep, err
	})
	if err != nil {
		return nil, err
	}
	return v.(*ComputeReply), nil
}

// ownerSpan is one shard's contiguous slice of a sorted vertex list.
type ownerSpan struct {
	shard  int
	lo, hi int // index range into the sorted list
}

// spansOf partitions a sorted vertex list into per-owner spans — the
// payoff of contiguous placement: ownership routing is a linear walk, no
// per-vertex map.
func (f *Fleet) spansOf(verts []int32) []ownerSpan {
	var out []ownerSpan
	i := 0
	for s := 0; s+1 < len(f.bounds) && i < len(verts); s++ {
		hi := f.bounds[s+1]
		j := i
		for j < len(verts) && verts[j] < hi {
			j++
		}
		if j > i {
			out = append(out, ownerSpan{shard: s, lo: i, hi: j})
		}
		i = j
	}
	return out
}

// rlevel is the router's view of one activation level: the sorted vertex
// set, hit flags, per-miss sampled sources, and the level's flat rows.
type rlevel struct {
	verts []int32
	idx   map[int32]int32
	hit   []bool
	srcs  [][]int32
	rows  []float32
	miss  int
}

func newRLevel(verts []int32, dim int) *rlevel {
	vs := append([]int32(nil), verts...)
	sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
	rl := &rlevel{
		verts: vs,
		idx:   make(map[int32]int32, len(vs)),
		hit:   make([]bool, len(vs)),
		srcs:  make([][]int32, len(vs)),
		rows:  make([]float32, len(vs)*dim),
	}
	for i, v := range vs {
		rl.idx[v] = int32(i)
	}
	return rl
}

// Forward computes logits for the deduped seed set through the fleet:
// the same top-down probe/expand then bottom-up per-layer execution as
// the single-node leveled forward, with every owned span resolved by its
// shard. Returns the logits over the sorted seed space plus the parent-id
// → row map, exactly like serve's forwardLeveled — rows are bitwise-
// identical to single-node serving because every shard rebuilds its
// blocks with the same deterministic sampler, canonical edge order,
// frozen plan and engine accumulators (and every replica of a span is
// the same pure function, so failover never changes a bit).
//
// sp is the caller's already-open sample-stage span; it stays open across
// the whole top-down phase (shard-side cache and exec spans record under
// the same batch trace id).
func (f *Fleet) Forward(batchID, ver uint64, seeds []int32, sp obs.Span) (*tensor.Tensor, map[int32]int32, error) {
	dims := f.src.LayerDims()
	L := len(dims) - 1
	sets := make([]*rlevel, L+1)

	// Top-down: each level's owned spans expand in parallel on their
	// shards — cache probes shard-side, so a fully cached frontier
	// short-circuits right here and no Compute RPC is ever issued.
	cur := seeds
	for l := L; l >= 0; l-- {
		rl := newRLevel(cur, dims[l])
		sets[l] = rl
		if err := f.expandLevel(batchID, ver, l, dims[l], rl); err != nil {
			sp.End()
			return nil, nil, err
		}
		if l == 0 {
			break
		}
		var next []int32
		seen := make(map[int32]struct{}, rl.miss*(f.cfg.Fanouts[L-l]+1))
		for i, v := range rl.verts {
			if rl.hit[i] {
				continue
			}
			// The target's own level-(l-1) row feeds the self term.
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				next = append(next, v)
			}
			for _, src := range rl.srcs[i] {
				if _, ok := seen[src]; !ok {
					seen[src] = struct{}{}
					next = append(next, src)
				}
			}
		}
		cur = next
	}
	sp.End()

	// Bottom-up: one Compute fan-out per layer with misses, each shard
	// running its owned targets over shipped lower-level rows.
	for l := 1; l <= L; l++ {
		rl := sets[l]
		if rl.miss == 0 {
			continue
		}
		csp := obs.Begin(obs.StageCollective, batchID)
		err := f.computeLevel(batchID, ver, l, dims[l-1], dims[l], rl, sets[l-1])
		csp.End()
		if err != nil {
			return nil, nil, err
		}
	}

	top := sets[L]
	out := tensor.Get(len(top.verts), dims[L])
	copy(out.Data(), top.rows)
	return out, top.idx, nil
}

// expandLevel fans one level's sorted vertex set out to its owners: hits
// come back as rows, misses as sampled source lists (level 0 misses come
// back as gathered feature rows, so level 0 always resolves fully).
func (f *Fleet) expandLevel(batchID, ver uint64, level, dim int, rl *rlevel) error {
	spans := f.spansOf(rl.verts)
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i, os := range spans {
		wg.Add(1)
		go func(i int, os ownerSpan) {
			defer wg.Done()
			args := &ExpandArgs{
				Batch: batchID, Ver: ver, Level: level, Dim: dim,
				Verts: rl.verts[os.lo:os.hi],
			}
			rep, err := f.callExpand(os.shard, args)
			if err != nil {
				errs[i] = err
				return
			}
			st := f.stats[os.shard]
			// Exact encoded frame sizes, whatever the transport — the TCP
			// path puts exactly these bytes on the wire. Booked once per
			// call from the winning reply: hedged or retried losers never
			// reach this line.
			st.bytesOut.Add(uint64(wire.SizeExpandArgs(args)))
			st.bytesIn.Add(uint64(wire.SizeExpandReply(rep)))
			copy(rl.rows[os.lo*dim:os.hi*dim], rep.Rows)
			for k := os.lo; k < os.hi; k++ {
				rl.hit[k] = rep.Hit[k-os.lo]
				if level > 0 && !rl.hit[k] {
					rl.srcs[k] = rep.Srcs[k-os.lo]
				}
			}
		}(i, os)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i := range rl.verts {
		if !rl.hit[i] {
			rl.miss++
		}
	}
	// Level 0 misses came back gathered; nothing below remains to compute.
	if level == 0 {
		rl.miss = 0
	}
	return nil
}

// computeLevel runs layer level-1 for the level's misses: per owning
// shard, ship the deduplicated lower-level input set (each target plus
// its sampled sources) with its rows, and splice the computed target rows
// back into the level.
func (f *Fleet) computeLevel(batchID, ver uint64, level, inDim, outDim int, rl, prev *rlevel) error {
	spans := f.spansOf(rl.verts)
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for i, os := range spans {
		// Owned miss targets, ascending (span order is ascending already).
		var targets []int32
		for k := os.lo; k < os.hi; k++ {
			if !rl.hit[k] {
				targets = append(targets, rl.verts[k])
			}
		}
		if len(targets) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, os ownerSpan, targets []int32) {
			defer wg.Done()
			// The input set: every target and its sampled sources, sorted
			// and deduplicated — the shard rebuilds its block in this
			// ascending-parent-order local space, which induces the same
			// per-destination accumulation order as the single-node block.
			seen := make(map[int32]struct{}, len(targets)*4)
			var in []int32
			add := func(v int32) {
				if _, ok := seen[v]; !ok {
					seen[v] = struct{}{}
					in = append(in, v)
				}
			}
			for _, v := range targets {
				add(v)
				for _, s := range rl.srcs[rl.idx[v]] {
					add(s)
				}
			}
			sort.Slice(in, func(a, b int) bool { return in[a] < in[b] })
			rows := make([]float32, len(in)*inDim)
			for j, v := range in {
				copy(rows[j*inDim:(j+1)*inDim], prev.rows[int(prev.idx[v])*inDim:int(prev.idx[v]+1)*inDim])
			}
			args := &ComputeArgs{
				Batch: batchID, Ver: ver, Level: level,
				InDim: inDim, OutDim: outDim,
				Verts: targets, In: in, Rows: rows,
			}
			rep, err := f.callCompute(os.shard, args)
			if err != nil {
				errs[i] = err
				return
			}
			st := f.stats[os.shard]
			st.computes.Add(1)
			st.bytesOut.Add(uint64(wire.SizeComputeArgs(args)))
			st.bytesIn.Add(uint64(wire.SizeComputeReply(rep)))
			for j, v := range targets {
				k := int(rl.idx[v])
				copy(rl.rows[k*outDim:(k+1)*outDim], rep.Rows[j*outDim:(j+1)*outDim])
			}
		}(i, os, targets)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
