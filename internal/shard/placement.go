// Placement decides which contiguous vertex range each shard owns. The
// split is always contiguous — a shard holds the CSR rows and feature
// rows of one id range, so ownership is a two-comparison range check and
// the router's sorted frontier partitions into per-shard spans for free —
// but the boundaries can be chosen three ways: equal vertex counts (the
// P3-style block split internal/dist uses), equal in-edge counts (degree-
// weighted, balancing aggregation work on skewed graphs), or cost-aware
// (both candidates priced with the α+β link model from internal/dist and
// the cheaper fleet makespan kept — CaPGNN's resource-aware placement
// angle, collapsed to the knobs this simulation actually has).
package shard

import (
	"fmt"
	"sort"

	"wisegraph/internal/device"
	"wisegraph/internal/dist"
	"wisegraph/internal/graph"
)

// Placement names a boundary-selection policy.
type Placement int

const (
	// PlaceVertex splits the id space into equal contiguous vertex
	// blocks, ignoring degree skew.
	PlaceVertex Placement = iota
	// PlaceEdge splits at in-edge-count quantiles so every shard owns
	// roughly the same aggregation workload.
	PlaceEdge
	// PlaceCost prices the vertex and edge candidates with the α+β link
	// model and keeps the one with the lower fleet makespan.
	PlaceCost
)

// String names the placement as spelled in -placement flags.
func (p Placement) String() string {
	switch p {
	case PlaceVertex:
		return "vertex"
	case PlaceEdge:
		return "edge"
	default:
		return "cost"
	}
}

// ParsePlacement reads a -placement flag value ("" defaults to edge:
// balancing owned in-edges is the safe choice on any skewed graph).
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "", "edge":
		return PlaceEdge, nil
	case "vertex":
		return PlaceVertex, nil
	case "cost":
		return PlaceCost, nil
	default:
		return 0, fmt.Errorf("shard: unknown placement %q (want vertex, edge or cost)", s)
	}
}

// Boundaries returns the n+1 contiguous range bounds for n shards over
// the CSR's vertex space: shard i owns [bounds[i], bounds[i+1]). f is the
// feature width the cost model prices row movement with (only PlaceCost
// reads it). Empty shards are legal on tiny graphs.
func Boundaries(csr *graph.CSR, n int, p Placement, f int) []int32 {
	v := len(csr.RowPtr) - 1
	if n < 1 {
		n = 1
	}
	switch p {
	case PlaceVertex:
		return vertexBounds(v, n)
	case PlaceEdge:
		return edgeBounds(csr, n)
	default:
		vb, eb := vertexBounds(v, n), edgeBounds(csr, n)
		if FleetPrice(csr, vb, f) <= FleetPrice(csr, eb, f) {
			return vb
		}
		return eb
	}
}

func vertexBounds(v, n int) []int32 {
	b := make([]int32, n+1)
	for i := 1; i < n; i++ {
		b[i] = int32(i * v / n)
	}
	b[n] = int32(v)
	return b
}

// edgeBounds places boundary i at the first vertex whose cumulative
// in-edge count reaches i/n of the total, so owned aggregation work is
// balanced even when degree mass concentrates in one id range.
func edgeBounds(csr *graph.CSR, n int) []int32 {
	v := len(csr.RowPtr) - 1
	e := int64(csr.RowPtr[v])
	b := make([]int32, n+1)
	for i := 1; i < n; i++ {
		target := e * int64(i) / int64(n)
		b[i] = int32(sort.Search(v, func(x int) bool {
			return int64(csr.RowPtr[x]) >= target
		}))
		if b[i] < b[i-1] {
			b[i] = b[i-1]
		}
	}
	b[n] = int32(v)
	return b
}

// AssignReplicas groups a flat daemon address list into the per-span
// replica sets of an R-way replicated placement: addrs[s*r : s*r+r] are
// the r interchangeable owners of span s, so out[s][j] is replica j of
// span s. This is the replica half of a placement — Boundaries picks
// where the spans fall, AssignReplicas says who serves each one. The
// flat order (all replicas of span 0, then span 1, ...) is the order
// -shard-addrs flags and Hello handshakes use everywhere.
func AssignReplicas(addrs []string, r int) ([][]string, error) {
	if r < 1 {
		r = 1
	}
	if len(addrs) == 0 || len(addrs)%r != 0 {
		return nil, fmt.Errorf("shard: %d addresses cannot form %d-way replica groups", len(addrs), r)
	}
	out := make([][]string, len(addrs)/r)
	for s := range out {
		out[s] = addrs[s*r : (s+1)*r : (s+1)*r]
	}
	return out, nil
}

// FleetPrice prices one candidate split with the α+β link model: per
// shard, the bandwidth-bound aggregation compute over its owned in-edges
// plus one collective that ships every remote source row it references
// (deduplicated, WiseGraph-style) across the link. The fleet makespan is
// the slowest shard — the quantity a placement should minimize. Uses the
// A100 device and PCIe-4 link specs internal/dist calibrates against.
func FleetPrice(csr *graph.CSR, bounds []int32, f int) float64 {
	spec := device.A100()
	link := dist.PCIe4()
	ff := float64(f) * 4 // bytes per row element over the feature width
	var worst float64
	for s := 0; s+1 < len(bounds); s++ {
		lo, hi := bounds[s], bounds[s+1]
		edges := float64(csr.RowPtr[hi] - csr.RowPtr[lo])
		rows := float64(hi - lo)
		remote := map[int32]struct{}{}
		for slot := csr.RowPtr[lo]; slot < csr.RowPtr[hi]; slot++ {
			if src := csr.Col[slot]; src < lo || src >= hi {
				remote[src] = struct{}{}
			}
		}
		comp := (rows*ff + 3*edges*ff) / spec.MemBandwidth
		comm := link.Alpha + float64(len(remote))*ff/link.Bandwidth
		if cost := comp + comm; cost > worst {
			worst = cost
		}
	}
	return worst
}
