package shard

import "fmt"

// The RPC surface between the router and one shard. The interface is
// deliberately transport-shaped — plain-old-data requests in, plain-old-
// data replies out, no shared mutable state, every row crossing it copied
// — so the in-process channel transport below can be swapped for a real
// network transport without touching the router or the shard logic.
//
// Both calls are idempotent pure functions of (request, model version):
// Expand and Compute derive everything from the shard's frozen graph
// slice, the deterministic sampler and the shipped input rows. That is
// what makes the router's hedging ladder numerics-preserving — a hedged
// duplicate computes exactly the bytes the abandoned attempt would have.

// Conn is one shard's RPC endpoint as the router sees it.
type Conn interface {
	// Expand probes the shard's per-layer cache for the given owned
	// vertices and samples the in-frontier of the misses.
	Expand(args *ExpandArgs) (*ExpandReply, error)
	// Compute runs one model layer for the given owned target vertices
	// over shipped lower-level input rows.
	Compute(args *ComputeArgs) (*ComputeReply, error)
}

// ExpandArgs asks a shard to resolve one level's owned vertex span:
// which rows are cached (returned inline), and what the deterministic
// sampler's in-frontier is for the rest.
type ExpandArgs struct {
	Batch uint64 // trace id, threads obs spans through shard compute
	Ver   uint64 // model version the caller's batch is coherent at
	Level int    // 0 = input features, L = logits
	Dim   int    // row width at this level
	Verts []int32
}

// ExpandReply carries, per requested vertex: a hit flag plus the cached
// row, or (levels ≥ 1) the sampled source ids of the miss. Rows is flat
// [len(Verts)×Dim]; only hit rows are meaningful — except at level 0,
// where the shard gathers its owned feature rows so misses come back
// filled too and no second round trip is needed.
type ExpandReply struct {
	Hit  []bool
	Rows []float32
	Srcs [][]int32
}

// ComputeArgs asks a shard to run layer Level-1 for its owned miss
// targets. In is the ascending deduplicated level-(Level-1) vertex set
// the targets' blocks read (each target plus its sampled sources), and
// Rows their rows, flat [len(In)×InDim]. The shard re-derives each
// target's sampled slots with the same deterministic sampler the
// expansion used, so edge types and canonical per-target edge order come
// from its own CSR slice rather than riding the wire.
type ComputeArgs struct {
	Batch  uint64
	Ver    uint64
	Level  int
	InDim  int
	OutDim int
	Verts  []int32
	In     []int32
	Rows   []float32
}

// ComputeReply returns the computed rows, flat [len(Verts)×OutDim], with
// the between-layer activation already applied (ReLU below the top
// level), exactly as the single-node forward splices them.
type ComputeReply struct {
	Rows []float32
}

// localConn is the in-process transport: requests cross a channel into
// the shard's worker pool and the reply comes back on a per-call channel.
// It is the only Conn implementation today; a network transport would
// serialize the same argument structs.
type localConn struct{ s *Shard }

func (c localConn) Expand(args *ExpandArgs) (*ExpandReply, error) {
	rep, err := c.s.dispatch(call{expand: args})
	return rep.expand, err
}

func (c localConn) Compute(args *ComputeArgs) (*ComputeReply, error) {
	rep, err := c.s.dispatch(call{compute: args})
	return rep.compute, err
}

// call is one queued RPC with its reply channel.
type call struct {
	expand  *ExpandArgs
	compute *ComputeArgs
	reply   chan reply
}

type reply struct {
	expand  *ExpandReply
	compute *ComputeReply
	err     error
}

// dispatch enqueues the call for the shard's worker pool and blocks for
// the reply, tracking the shard-side in-flight count from admission to
// completion (the fleet-wide drain invariant reads it).
func (s *Shard) dispatch(c call) (reply, error) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	c.reply = make(chan reply, 1)
	select {
	case s.reqCh <- c:
	case <-s.closed:
		return reply{}, fmt.Errorf("shard %d: draining", s.id)
	}
	r := <-c.reply
	return r, r.err
}
