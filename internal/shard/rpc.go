package shard

import (
	"context"
	"fmt"

	"wisegraph/internal/shard/wire"
)

// The RPC surface between the router and one shard. The interface is
// deliberately transport-shaped — plain-old-data requests in, plain-old-
// data replies out, no shared mutable state, every row crossing it copied
// — and there are two transports behind it: the Shard itself (in-process,
// requests cross a channel into the worker pool) and tcpConn (the
// internal/shard/wire binary protocol over a socket, shards running as
// separate processes). The router never knows which it holds.
//
// Both calls are idempotent pure functions of (request, model version):
// Expand and Compute derive everything from the shard's frozen graph
// slice, the deterministic sampler and the shipped input rows. That is
// what makes the router's hedging ladder numerics-preserving — a hedged
// duplicate computes exactly the bytes the abandoned attempt would have —
// and what makes retrying a broken connection on the TCP transport safe.

// The message types are defined in internal/shard/wire (they ARE the wire
// protocol); aliased here so the router and shard logic keep their
// natural names.
type (
	// ExpandArgs asks a shard to resolve one level's owned vertex span.
	ExpandArgs = wire.ExpandArgs
	// ExpandReply carries per-vertex hit rows or sampled source lists.
	ExpandReply = wire.ExpandReply
	// ComputeArgs asks a shard to run one layer for its owned targets.
	ComputeArgs = wire.ComputeArgs
	// ComputeReply returns the computed rows.
	ComputeReply = wire.ComputeReply
)

// Conn is one shard's RPC endpoint as the router sees it. The context
// carries hedged-read cancellation: when another replica answers first,
// the router cancels the losers, and a transport may use that to stop
// waiting (the in-process transport abandons the wait; the TCP transport
// additionally frees its in-flight window slot — the late reply is
// dropped by the demux).
type Conn interface {
	// Expand probes the shard's per-layer cache for the given owned
	// vertices and samples the in-frontier of the misses.
	Expand(ctx context.Context, args *ExpandArgs) (*ExpandReply, error)
	// Compute runs one model layer for the given owned target vertices
	// over shipped lower-level input rows.
	Compute(ctx context.Context, args *ComputeArgs) (*ComputeReply, error)
}

// Expand implements Conn in-process: the request crosses a channel into
// the shard's worker pool and the reply comes back on a per-call channel.
func (s *Shard) Expand(ctx context.Context, args *ExpandArgs) (*ExpandReply, error) {
	rep, err := s.dispatch(ctx, call{expand: args})
	return rep.expand, err
}

// Compute implements Conn in-process.
func (s *Shard) Compute(ctx context.Context, args *ComputeArgs) (*ComputeReply, error) {
	rep, err := s.dispatch(ctx, call{compute: args})
	return rep.compute, err
}

// call is one queued RPC with its reply channel.
type call struct {
	expand  *ExpandArgs
	compute *ComputeArgs
	reply   chan reply
}

type reply struct {
	expand  *ExpandReply
	compute *ComputeReply
	err     error
}

// dispatch enqueues the call for the shard's worker pool and blocks for
// the reply, tracking the shard-side in-flight count from admission to
// completion (the fleet-wide drain invariant reads it).
//
// Shutdown is signalled through s.closed ONLY — reqCh is never closed, so
// an abandoned hedged straggler that dispatches concurrently with Close
// can never hit a send-on-closed-channel panic; it either loses the
// admission select and returns a draining error, or wins it and is
// resolved below. The drain invariant's answer for such stragglers is
// explicit: once Close has begun, a dispatch that has not yet received
// its reply resolves to a draining error (a worker that already picked
// the call up may still complete it — the result lands in the buffered
// reply channel and is discarded, which is safe because both RPC kinds
// are idempotent and side-effect-free beyond the shard's own cache).
// A canceled context (a hedged read lost to a faster replica) abandons
// the call at either select; a worker that already picked it up still
// completes it into the buffered reply channel, which is discarded.
func (s *Shard) dispatch(ctx context.Context, c call) (reply, error) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	c.reply = make(chan reply, 1)
	select {
	case s.reqCh <- c:
	case <-s.closed:
		return reply{}, fmt.Errorf("shard %d: draining", s.id)
	case <-ctx.Done():
		return reply{}, ctx.Err()
	}
	select {
	case r := <-c.reply:
		return r, r.err
	case <-s.closed:
		return reply{}, fmt.Errorf("shard %d: draining", s.id)
	case <-ctx.Done():
		return reply{}, ctx.Err()
	}
}
