package shard

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"wisegraph/internal/graph"
	"wisegraph/internal/joint"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/shard/wire"
	"wisegraph/internal/tensor"
)

// The TCP transport: tcpConn implements Conn over the internal/shard/wire
// protocol against a wisegraph-shard daemon, and Server is the daemon
// side, feeding decoded frames into the Shard worker pool. Each
// connection opens with a Hello carrying the full fleet configuration;
// the daemon is passive and interchangeable — it learns its shard
// identity (including its replica id), owned range, sampler seed, engine
// and tuned plan from the first Hello it accepts, and validates
// everything it can recompute (boundaries, model shape, parameter hash)
// so a misconfigured fleet fails at connect time instead of serving
// subtly different logits.
//
// The transport is PIPELINED: one live connection per endpoint carries
// many concurrent RPCs, each tagged with a request id the reply echoes.
// A per-connection demux goroutine matches reply frames to waiting
// callers; a bounded window caps in-flight requests per connection. A
// per-call timer — not a socket deadline — enforces the RPC timeout, so
// one slow call never poisons the shared stream: the caller gives up,
// the stream stays healthy, and the late reply is dropped by the demux
// when its reqid no longer has a waiter.

// connWindow bounds in-flight RPCs per pipelined connection: enough to
// keep a deep fan-out's expand/compute spans streaming without a
// round-trip between them, small enough that a stalled daemon back-
// pressures the router instead of buffering unboundedly.
const connWindow = 32

// serverWindow bounds concurrently executing handlers per accepted
// connection on the daemon side (requests beyond it queue in the read
// loop, which stops reading — TCP back-pressure does the rest).
const serverWindow = 64

// ParamSum hashes a model's parameter bits with FNV-1a. Router and
// daemon must arrive at the same sum or the handshake fails: bitwise
// logit parity is impossible without bitwise parameter parity.
func ParamSum(m *nn.Model) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, p := range m.Params() {
		for _, x := range p.Value.Data() {
			b := math.Float32bits(x)
			for s := 0; s < 32; s += 8 {
				h ^= uint64(byte(b >> s))
				h *= prime
			}
		}
	}
	return h
}

// TransportError wraps a network-level failure (dial, deadline, broken
// or out-of-sync stream). It marks the attempt retryable: the router's
// ladder redials and re-issues, which is safe because both RPC kinds are
// idempotent. Application errors from the shard arrive as MsgError
// frames and are NOT wrapped — they are deterministic protocol or
// ownership violations and surface immediately.
type TransportError struct {
	Addr    string
	Timeout bool
	Err     error
}

func (e *TransportError) Error() string {
	kind := "transport"
	if e.Timeout {
		kind = "timeout"
	}
	return fmt.Sprintf("shard %s: %s: %v", e.Addr, kind, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// pipeReply is one demuxed reply frame.
type pipeReply struct {
	t       wire.MsgType
	payload []byte
}

// pipeConn is one live pipelined connection: a shared write path, a
// demux goroutine reading reply frames, and the waiter table matching
// reqids to callers. It fails as a unit — any read/write/framing error
// closes done, wakes every waiter, and the endpoint redials lazily.
type pipeConn struct {
	nc     net.Conn
	window chan struct{} // in-flight slots

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	waiters map[uint32]chan pipeReply

	failOnce sync.Once
	err      error
	done     chan struct{} // closed after err is set
}

// fail marks the connection dead exactly once: the error is latched,
// done closes (waking every waiter and the window acquirers), and the
// socket closes (unblocking the demux read). Waiter channels are never
// closed and never written by fail — waiters observe done — so no
// Close/redial/demux interleaving can raise a send on a closed channel.
func (pc *pipeConn) fail(err error) {
	pc.failOnce.Do(func() {
		pc.err = err
		close(pc.done)
		pc.nc.Close()
	})
}

// tcpConn is one shard replica's endpoint over TCP: at most one live
// pipelined connection, redialed lazily (under the endpoint lock, so
// concurrent callers after a failure trigger one dial, not a stampede).
type tcpConn struct {
	addr    string
	timeout time.Duration
	hello   []byte // encoded Hello frame, replayed on every dial

	nextID   atomic.Uint32
	inflight atomic.Int64
	maxIF    atomic.Int64 // high-watermark of concurrently in-flight RPCs

	mu     sync.Mutex
	live   *pipeConn
	closed bool
}

// newTCPConn builds the endpoint and performs one eager dial+handshake
// so a bad address or a rejected Hello fails fleet construction, not the
// first request.
func newTCPConn(addr string, h *wire.Hello, timeout time.Duration) (*tcpConn, error) {
	c := &tcpConn{addr: addr, timeout: timeout, hello: wire.AppendHello(nil, h)}
	if _, err := c.conn(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *tcpConn) terr(err error) error {
	var ne net.Error
	timeout := errors.As(err, &ne) && ne.Timeout()
	return &TransportError{Addr: c.addr, Timeout: timeout, Err: err}
}

// MaxInFlight reports the high-watermark of RPCs that were in flight on
// this endpoint at once — the pipelining acceptance metric.
func (c *tcpConn) MaxInFlight() int64 { return c.maxIF.Load() }

// conn returns the live pipelined connection, dialing one if needed.
func (c *tcpConn) conn() (*pipeConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, &TransportError{Addr: c.addr, Err: errors.New("endpoint closed")}
	}
	if pc := c.live; pc != nil {
		select {
		case <-pc.done:
			c.live = nil // fell over since last use; redial below
		default:
			return pc, nil
		}
	}
	pc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.live = pc
	go c.demux(pc)
	return pc, nil
}

// dial opens a fresh connection and replays the Hello handshake on it.
// A rejected Hello is a permanent error (the daemon cannot serve this
// fleet bitwise-identically); anything network-shaped is a
// TransportError.
func (c *tcpConn) dial() (*pipeConn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, c.terr(err)
	}
	nc.SetDeadline(time.Now().Add(c.timeout))
	if _, err := nc.Write(c.hello); err != nil {
		nc.Close()
		return nil, c.terr(err)
	}
	t, _, payload, err := wire.ReadFrame(nc)
	if err != nil {
		nc.Close()
		return nil, c.terr(err)
	}
	switch t {
	case wire.MsgHelloOK:
		nc.SetDeadline(time.Time{})
		return &pipeConn{
			nc:      nc,
			window:  make(chan struct{}, connWindow),
			waiters: make(map[uint32]chan pipeReply),
			done:    make(chan struct{}),
		}, nil
	case wire.MsgError:
		nc.Close()
		return nil, fmt.Errorf("shard %s: hello rejected: %s", c.addr, wire.DecodeError(payload))
	default:
		nc.Close()
		return nil, c.terr(fmt.Errorf("unexpected %v to Hello", t))
	}
}

// demux is the connection's single reader: it matches every reply frame
// to its waiter by reqid. A reqid with no waiter is a reply to a call
// that timed out or was canceled (a hedged loser) — dropped, stream
// intact. Any read error fails the connection as a unit.
func (c *tcpConn) demux(pc *pipeConn) {
	br := bufio.NewReaderSize(pc.nc, 1<<16)
	for {
		t, reqid, payload, err := wire.ReadFrame(br)
		if err != nil {
			pc.fail(c.terr(err))
			c.clearLive(pc)
			return
		}
		pc.mu.Lock()
		w, ok := pc.waiters[reqid]
		delete(pc.waiters, reqid)
		pc.mu.Unlock()
		if ok {
			w <- pipeReply{t: t, payload: payload} // buffered; never blocks
		}
	}
}

// clearLive forgets pc as the endpoint's live connection (the next call
// redials). A newer connection installed meanwhile is left alone.
func (c *tcpConn) clearLive(pc *pipeConn) {
	c.mu.Lock()
	if c.live == pc {
		c.live = nil
	}
	c.mu.Unlock()
}

// close drops the endpoint permanently (the daemon sees EOF and unwinds).
func (c *tcpConn) close() {
	c.mu.Lock()
	c.closed = true
	pc := c.live
	c.live = nil
	c.mu.Unlock()
	if pc != nil {
		pc.fail(errors.New("endpoint closed"))
	}
}

// reqID returns the next nonzero request id (0 is the handshake tag).
func (c *tcpConn) reqID() uint32 {
	for {
		if id := c.nextID.Add(1); id != 0 {
			return id
		}
	}
}

// roundTrip sends one tagged request frame down the pipelined stream and
// waits for its reply, bounded by the in-flight window, the per-call
// timer, and the hedge-cancellation context. encode must append the
// complete frame for the given reqid.
func (c *tcpConn) roundTrip(ctx context.Context, reqid uint32, frame []byte, want wire.MsgType) ([]byte, error) {
	pc, err := c.conn()
	if err != nil {
		return nil, err
	}
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()

	// A window slot bounds in-flight requests on this stream.
	select {
	case pc.window <- struct{}{}:
	case <-pc.done:
		c.clearLive(pc)
		return nil, c.terr(pc.err)
	case <-timer.C:
		return nil, &TransportError{Addr: c.addr, Timeout: true, Err: fmt.Errorf("window full for %v", c.timeout)}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	n := c.inflight.Add(1)
	for {
		old := c.maxIF.Load()
		if n <= old || c.maxIF.CompareAndSwap(old, n) {
			break
		}
	}
	release := func() {
		c.inflight.Add(-1)
		<-pc.window
	}

	ch := make(chan pipeReply, 1)
	pc.mu.Lock()
	pc.waiters[reqid] = ch
	pc.mu.Unlock()
	deregister := func() {
		pc.mu.Lock()
		delete(pc.waiters, reqid)
		pc.mu.Unlock()
	}

	pc.wmu.Lock()
	pc.nc.SetWriteDeadline(time.Now().Add(c.timeout))
	_, werr := pc.nc.Write(frame)
	pc.wmu.Unlock()
	if werr != nil {
		deregister()
		release()
		pc.fail(c.terr(werr))
		c.clearLive(pc)
		return nil, c.terr(werr)
	}

	select {
	case r := <-ch:
		release()
		switch r.t {
		case want:
			return r.payload, nil
		case wire.MsgError:
			// Application error: the stream is healthy, only this call is.
			return nil, fmt.Errorf("shard %s: %s", c.addr, wire.DecodeError(r.payload))
		default:
			err := fmt.Errorf("unexpected %v, want %v", r.t, want)
			pc.fail(c.terr(err))
			c.clearLive(pc)
			return nil, c.terr(err)
		}
	case <-pc.done:
		deregister()
		release()
		c.clearLive(pc)
		return nil, c.terr(pc.err)
	case <-timer.C:
		// Per-call timeout: give up on THIS call only. The stream stays
		// live; if the reply ever lands, the demux finds no waiter for
		// the reqid and drops it.
		deregister()
		release()
		return nil, &TransportError{Addr: c.addr, Timeout: true, Err: fmt.Errorf("no reply within %v", c.timeout)}
	case <-ctx.Done():
		// Hedged loser: another replica answered first. Free the slot,
		// drop the eventual reply at the demux.
		deregister()
		release()
		return nil, ctx.Err()
	}
}

// Expand implements Conn over the wire.
func (c *tcpConn) Expand(ctx context.Context, args *ExpandArgs) (*ExpandReply, error) {
	reqid := c.reqID()
	p, err := c.roundTrip(ctx, reqid, wire.AppendExpandArgs(make([]byte, 0, wire.SizeExpandArgs(args)), reqid, args), wire.MsgExpandReply)
	if err != nil {
		return nil, err
	}
	rep, err := wire.DecodeExpandReply(p)
	if err != nil {
		return nil, fmt.Errorf("shard %s: bad ExpandReply: %w", c.addr, err)
	}
	return rep, nil
}

// Compute implements Conn over the wire.
func (c *tcpConn) Compute(ctx context.Context, args *ComputeArgs) (*ComputeReply, error) {
	reqid := c.reqID()
	p, err := c.roundTrip(ctx, reqid, wire.AppendComputeArgs(make([]byte, 0, wire.SizeComputeArgs(args)), reqid, args), wire.MsgComputeReply)
	if err != nil {
		return nil, err
	}
	rep, err := wire.DecodeComputeReply(p)
	if err != nil {
		return nil, fmt.Errorf("shard %s: bad ComputeReply: %w", c.addr, err)
	}
	return rep, nil
}

// serverStats is the daemon-side RPC accounting the /metrics endpoint
// exposes: per-kind counts, error count, exact frame bytes both ways,
// and per-kind service latency.
type serverStats struct {
	expands  atomic.Uint64
	computes atomic.Uint64
	errors   atomic.Uint64
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
	latExp   obs.Histogram
	latCmp   obs.Histogram
}

// Server is the daemon side of the wire protocol: it owns the loaded
// graph/features/model and lazily builds its Shard from the first Hello
// it accepts — daemons are interchangeable; the router assigns identity
// (shard id AND replica id). Later connections must present a
// byte-identical Hello (same fleet, same identity) or are rejected.
//
// Each accepted connection is served pipelined: the read loop decodes
// frames and hands each request to a bounded pool of handler goroutines;
// replies are written (reqid-tagged) as they finish, so a slow Compute
// never holds up an Expand that arrived behind it.
type Server struct {
	csr    *graph.CSR
	feats  *tensor.Tensor
	ntypes int
	model  *nn.Model
	cfg    NodeConfig // node-local budget: Workers, Spec, CacheBudget/Shards

	stats serverStats

	mu        sync.Mutex
	helloRaw  []byte // payload of the accepted Hello
	ident     *wire.Hello
	shard     *Shard
	conns     map[net.Conn]struct{}
	listening bool
	closed    bool
	wg        sync.WaitGroup
}

// NewServer builds a daemon-side server over the node's loaded state.
// Fanouts/Seed/Engine in cfg are ignored — they arrive in the Hello.
func NewServer(csr *graph.CSR, feats *tensor.Tensor, ntypes int, model *nn.Model, cfg NodeConfig) *Server {
	return &Server{
		csr: csr, feats: feats, ntypes: ntypes, model: model, cfg: cfg,
		conns: make(map[net.Conn]struct{}),
	}
}

// Shard returns the lazily built shard (nil before the first accepted
// Hello).
func (sv *Server) Shard() *Shard {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.shard
}

// Ident returns the accepted identity (nil before the first Hello).
func (sv *Server) Ident() *wire.Hello {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.ident
}

// InFlight reports admitted-but-unanswered RPCs (0 before the first
// Hello) — the daemon's half of the drain invariant, printed at SIGTERM.
func (sv *Server) InFlight() int64 {
	if s := sv.Shard(); s != nil {
		return s.InFlight()
	}
	return 0
}

// Serve accepts connections until the listener is closed; each gets its
// own goroutine. It returns nil on a Close-initiated shutdown.
func (sv *Server) Serve(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			sv.mu.Lock()
			closed := sv.closed
			sv.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sv.mu.Lock()
		if sv.closed {
			sv.mu.Unlock()
			nc.Close()
			return nil
		}
		sv.conns[nc] = struct{}{}
		sv.wg.Add(1)
		sv.mu.Unlock()
		go sv.serveConn(nc)
	}
}

// Close stops serving: marks the server closed, closes every live
// connection (in-flight handlers see a broken write and unwind), waits
// for the handlers, then drains the shard's worker pool. The caller
// closes the listener.
func (sv *Server) Close() {
	sv.mu.Lock()
	sv.closed = true
	for nc := range sv.conns {
		nc.Close()
	}
	s := sv.shard
	sv.mu.Unlock()
	sv.wg.Wait()
	if s != nil {
		s.Close()
	}
}

func (sv *Server) dropConn(nc net.Conn) {
	sv.mu.Lock()
	delete(sv.conns, nc)
	sv.mu.Unlock()
	nc.Close()
	sv.wg.Done()
}

// serveConn runs one connection: the strict Hello handshake, then a
// pipelined request loop — the reader dispatches each decoded request to
// a bounded handler goroutine and keeps reading; handlers write their
// reqid-tagged reply (serialized by a write mutex) the moment they
// finish, in whatever order that is.
func (sv *Server) serveConn(nc net.Conn) {
	defer sv.dropConn(nc)
	br := bufio.NewReaderSize(nc, 1<<16)
	bw := bufio.NewWriterSize(nc, 1<<16)
	var wmu sync.Mutex
	send := func(frame []byte) bool {
		wmu.Lock()
		defer wmu.Unlock()
		if _, err := bw.Write(frame); err != nil {
			return false
		}
		if bw.Flush() != nil {
			return false
		}
		sv.stats.bytesOut.Add(uint64(len(frame)))
		return true
	}

	t, _, payload, err := wire.ReadFrame(br)
	if err != nil {
		return
	}
	if t != wire.MsgHello {
		send(wire.AppendError(nil, 0, fmt.Sprintf("first frame is %v, want Hello", t)))
		return
	}
	s, err := sv.admit(payload)
	if err != nil {
		send(wire.AppendError(nil, 0, err.Error()))
		return
	}
	if !send(wire.AppendHelloOK(nil)) {
		return
	}

	// Handlers in flight on THIS connection; bounded by the window, and
	// all joined before the connection drops so no handler ever writes to
	// a closed bufio.Writer.
	sem := make(chan struct{}, serverWindow)
	var hwg sync.WaitGroup
	defer hwg.Wait()
	for {
		t, reqid, payload, err := wire.ReadFrame(br)
		if err != nil {
			return // EOF or broken peer; nothing to answer
		}
		sv.stats.bytesIn.Add(uint64(len(payload)) + 9)
		switch t {
		case wire.MsgExpand, wire.MsgCompute:
			sem <- struct{}{}
			hwg.Add(1)
			go func(t wire.MsgType, reqid uint32, payload []byte) {
				defer hwg.Done()
				defer func() { <-sem }()
				send(sv.handle(s, t, reqid, payload))
			}(t, reqid, payload)
		default:
			send(wire.AppendError(nil, reqid, fmt.Sprintf("unexpected %v", t)))
			return
		}
	}
}

// handle runs one decoded request on the shard and encodes its reply
// frame, echoing the request id (on errors too — the router's demux can
// only route what it can match).
func (sv *Server) handle(s *Shard, t wire.MsgType, reqid uint32, payload []byte) []byte {
	t0 := time.Now()
	switch t {
	case wire.MsgExpand:
		args, err := wire.DecodeExpandArgs(payload)
		if err != nil {
			sv.stats.errors.Add(1)
			return wire.AppendError(nil, reqid, fmt.Sprintf("bad ExpandArgs: %v", err))
		}
		rep, err := s.Expand(context.Background(), args)
		sv.stats.expands.Add(1)
		sv.stats.latExp.Observe(time.Since(t0))
		if err != nil {
			sv.stats.errors.Add(1)
			return wire.AppendError(nil, reqid, err.Error())
		}
		return wire.AppendExpandReply(nil, reqid, rep)
	default: // wire.MsgCompute — serveConn admits nothing else
		args, err := wire.DecodeComputeArgs(payload)
		if err != nil {
			sv.stats.errors.Add(1)
			return wire.AppendError(nil, reqid, fmt.Sprintf("bad ComputeArgs: %v", err))
		}
		rep, err := s.Compute(context.Background(), args)
		sv.stats.computes.Add(1)
		sv.stats.latCmp.Observe(time.Since(t0))
		if err != nil {
			sv.stats.errors.Add(1)
			return wire.AppendError(nil, reqid, err.Error())
		}
		return wire.AppendComputeReply(nil, reqid, rep)
	}
}

// admit validates a Hello payload and returns the node's shard, building
// it on the first accepted handshake. Identity is sticky: every later
// Hello must be byte-identical to the first (the replica id is part of
// the payload, so one daemon cannot serve as two replicas).
func (sv *Server) admit(payload []byte) (*Shard, error) {
	h, err := wire.DecodeHello(payload)
	if err != nil {
		return nil, fmt.Errorf("bad Hello: %v", err)
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.shard != nil {
		if string(payload) != string(sv.helloRaw) {
			return nil, fmt.Errorf("hello differs from the fleet this node already joined (shard %d replica %d)", sv.shard.id, sv.ident.Replica)
		}
		return sv.shard, nil
	}
	if err := sv.validate(h); err != nil {
		return nil, err
	}
	kind, gp, op, diff, err := joint.UnmarshalPlan(h.Plan)
	if err != nil {
		return nil, fmt.Errorf("bad plan: %v", err)
	}
	if kind != sv.model.Cfg.Kind {
		return nil, fmt.Errorf("plan is for %v, model is %v", kind, sv.model.Cfg.Kind)
	}
	plan := &joint.Result{Kind: kind, GraphPlan: gp, OpPlan: op, Differentiated: diff}
	cfg := sv.cfg
	cfg.Fanouts = make([]int, len(h.Fanouts))
	for i, f := range h.Fanouts {
		cfg.Fanouts[i] = int(f)
	}
	cfg.Seed = h.Seed
	cfg.Engine = h.Engine
	s, err := NewShard(int(h.ShardID), h.Lo, h.Hi, sv.csr, sv.feats, sv.ntypes, sv.model, plan, cfg)
	if err != nil {
		return nil, err
	}
	sv.shard = s
	sv.ident = h
	sv.helloRaw = append([]byte(nil), payload...)
	return s, nil
}

// validate cross-checks everything the node can verify locally: protocol
// version, identity ranges (replica id included), graph and model shape,
// bitwise parameter parity, and that the claimed owned range is exactly
// what the named placement policy derives on this node's copy of the
// graph.
func (sv *Server) validate(h *wire.Hello) error {
	nv := int64(len(sv.csr.RowPtr) - 1)
	ne := int64(len(sv.csr.Col))
	cfg := sv.model.Cfg
	switch {
	case h.Proto != wire.ProtoVersion:
		return fmt.Errorf("protocol %d, this node speaks %d", h.Proto, wire.ProtoVersion)
	case h.Shards < 1 || h.ShardID < 0 || h.ShardID >= h.Shards:
		return fmt.Errorf("shard id %d of %d", h.ShardID, h.Shards)
	case h.Replicas < 1 || h.Replica < 0 || h.Replica >= h.Replicas:
		return fmt.Errorf("replica id %d of %d", h.Replica, h.Replicas)
	case h.NumVertices != nv || h.NumEdges != ne:
		return fmt.Errorf("graph is %dv/%de on the router, %dv/%de here — different dataset", h.NumVertices, h.NumEdges, nv, ne)
	case int(h.NumTypes) != sv.ntypes:
		return fmt.Errorf("%d edge types on the router, %d here", h.NumTypes, sv.ntypes)
	case h.Kind != cfg.Kind.String():
		return fmt.Errorf("model %s on the router, %s here", h.Kind, cfg.Kind)
	case int(h.InDim) != cfg.InDim || int(h.Hidden) != cfg.Hidden || int(h.OutDim) != cfg.OutDim || int(h.Layers) != cfg.Layers:
		return fmt.Errorf("model shape %d/%d/%d×%d on the router, %d/%d/%d×%d here",
			h.InDim, h.Hidden, h.OutDim, h.Layers, cfg.InDim, cfg.Hidden, cfg.OutDim, cfg.Layers)
	case len(h.Fanouts) != cfg.Layers:
		return fmt.Errorf("%d fan-outs for a %d-layer model", len(h.Fanouts), cfg.Layers)
	}
	if sum := ParamSum(sv.model); h.ParamSum != sum {
		return fmt.Errorf("parameter hash %016x on the router, %016x here — different checkpoint", h.ParamSum, sum)
	}
	pl, err := ParsePlacement(h.Placement)
	if err != nil {
		return err
	}
	bounds := Boundaries(sv.csr, int(h.Shards), pl, sv.model.Cfg.InDim)
	if bounds[h.ShardID] != h.Lo || bounds[h.ShardID+1] != h.Hi {
		return fmt.Errorf("%s placement derives [%d,%d) for shard %d here, router claims [%d,%d)",
			h.Placement, bounds[h.ShardID], bounds[h.ShardID+1], h.ShardID, h.Lo, h.Hi)
	}
	return nil
}
