package shard

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"wisegraph/internal/graph"
	"wisegraph/internal/joint"
	"wisegraph/internal/nn"
	"wisegraph/internal/shard/wire"
	"wisegraph/internal/tensor"
)

// The TCP transport: tcpConn implements Conn over the internal/shard/wire
// protocol against a wisegraph-shard daemon, and Server is the daemon
// side, feeding decoded frames into the Shard worker pool. Each
// connection opens with a Hello carrying the full fleet configuration;
// the daemon is passive and interchangeable — it learns its shard
// identity, owned range, sampler seed, engine and tuned plan from the
// first Hello it accepts, and validates everything it can recompute
// (boundaries, model shape, parameter hash) so a misconfigured fleet
// fails at connect time instead of serving subtly different logits.

// ParamSum hashes a model's parameter bits with FNV-1a. Router and
// daemon must arrive at the same sum or the handshake fails: bitwise
// logit parity is impossible without bitwise parameter parity.
func ParamSum(m *nn.Model) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, p := range m.Params() {
		for _, x := range p.Value.Data() {
			b := math.Float32bits(x)
			for s := 0; s < 32; s += 8 {
				h ^= uint64(byte(b >> s))
				h *= prime
			}
		}
	}
	return h
}

// TransportError wraps a network-level failure (dial, deadline, broken
// or out-of-sync stream). It marks the attempt retryable: the router's
// ladder redials and re-issues, which is safe because both RPC kinds are
// idempotent. Application errors from the shard arrive as MsgError
// frames and are NOT wrapped — they are deterministic protocol or
// ownership violations and surface immediately.
type TransportError struct {
	Addr    string
	Timeout bool
	Err     error
}

func (e *TransportError) Error() string {
	kind := "transport"
	if e.Timeout {
		kind = "timeout"
	}
	return fmt.Sprintf("shard %s: %s: %v", e.Addr, kind, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// tcpConn is one shard's endpoint over TCP. Connections are reused
// across calls through a small idle pool, re-handshaken on dial, closed
// on any error (the stream may be out of sync), and every call runs
// under a full-call deadline.
type tcpConn struct {
	addr    string
	timeout time.Duration
	hello   []byte // encoded Hello frame, replayed on every dial

	mu   sync.Mutex
	idle []net.Conn
}

// newTCPConn builds the endpoint and performs one eager dial+handshake
// so a bad address or a rejected Hello fails fleet construction, not the
// first request.
func newTCPConn(addr string, h *wire.Hello, timeout time.Duration) (*tcpConn, error) {
	c := &tcpConn{addr: addr, timeout: timeout, hello: wire.AppendHello(nil, h)}
	nc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.put(nc)
	return c, nil
}

func (c *tcpConn) terr(err error) error {
	var ne net.Error
	timeout := errors.As(err, &ne) && ne.Timeout()
	return &TransportError{Addr: c.addr, Timeout: timeout, Err: err}
}

// dial opens a fresh connection and replays the Hello handshake on it.
// A rejected Hello is a permanent error (the daemon cannot serve this
// fleet bitwise-identically); anything network-shaped is a
// TransportError.
func (c *tcpConn) dial() (net.Conn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, c.terr(err)
	}
	nc.SetDeadline(time.Now().Add(c.timeout))
	if _, err := nc.Write(c.hello); err != nil {
		nc.Close()
		return nil, c.terr(err)
	}
	t, payload, err := wire.ReadFrame(nc)
	if err != nil {
		nc.Close()
		return nil, c.terr(err)
	}
	switch t {
	case wire.MsgHelloOK:
		nc.SetDeadline(time.Time{})
		return nc, nil
	case wire.MsgError:
		nc.Close()
		return nil, fmt.Errorf("shard %s: hello rejected: %s", c.addr, wire.DecodeError(payload))
	default:
		nc.Close()
		return nil, c.terr(fmt.Errorf("unexpected %v to Hello", t))
	}
}

func (c *tcpConn) get() (net.Conn, error) {
	c.mu.Lock()
	if n := len(c.idle); n > 0 {
		nc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return nc, nil
	}
	c.mu.Unlock()
	return c.dial()
}

func (c *tcpConn) put(nc net.Conn) {
	c.mu.Lock()
	c.idle = append(c.idle, nc)
	c.mu.Unlock()
}

// close drops every idle connection (the daemon sees EOF and unwinds).
func (c *tcpConn) close() {
	c.mu.Lock()
	for _, nc := range c.idle {
		nc.Close()
	}
	c.idle = nil
	c.mu.Unlock()
}

// roundTrip writes one request frame and reads one reply frame under the
// per-call deadline. Any I/O or framing failure closes the connection
// (its stream may hold a half-written frame) and comes back as a
// retryable TransportError; a MsgError reply leaves the connection
// healthy and surfaces as a permanent application error.
func (c *tcpConn) roundTrip(req []byte, want wire.MsgType) ([]byte, error) {
	nc, err := c.get()
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(c.timeout))
	if _, err := nc.Write(req); err != nil {
		nc.Close()
		return nil, c.terr(err)
	}
	t, payload, err := wire.ReadFrame(nc)
	if err != nil {
		nc.Close()
		return nil, c.terr(err)
	}
	nc.SetDeadline(time.Time{})
	switch t {
	case want:
		c.put(nc)
		return payload, nil
	case wire.MsgError:
		c.put(nc)
		return nil, fmt.Errorf("shard %s: %s", c.addr, wire.DecodeError(payload))
	default:
		nc.Close()
		return nil, c.terr(fmt.Errorf("unexpected %v, want %v", t, want))
	}
}

// Expand implements Conn over the wire.
func (c *tcpConn) Expand(args *ExpandArgs) (*ExpandReply, error) {
	p, err := c.roundTrip(wire.AppendExpandArgs(make([]byte, 0, wire.SizeExpandArgs(args)), args), wire.MsgExpandReply)
	if err != nil {
		return nil, err
	}
	rep, err := wire.DecodeExpandReply(p)
	if err != nil {
		return nil, fmt.Errorf("shard %s: bad ExpandReply: %w", c.addr, err)
	}
	return rep, nil
}

// Compute implements Conn over the wire.
func (c *tcpConn) Compute(args *ComputeArgs) (*ComputeReply, error) {
	p, err := c.roundTrip(wire.AppendComputeArgs(make([]byte, 0, wire.SizeComputeArgs(args)), args), wire.MsgComputeReply)
	if err != nil {
		return nil, err
	}
	rep, err := wire.DecodeComputeReply(p)
	if err != nil {
		return nil, fmt.Errorf("shard %s: bad ComputeReply: %w", c.addr, err)
	}
	return rep, nil
}

// Server is the daemon side of the wire protocol: it owns the loaded
// graph/features/model and lazily builds its Shard from the first Hello
// it accepts — daemons are interchangeable; the router assigns identity.
// Later connections must present a byte-identical Hello (same fleet,
// same identity) or are rejected.
type Server struct {
	csr    *graph.CSR
	feats  *tensor.Tensor
	ntypes int
	model  *nn.Model
	cfg    NodeConfig // node-local budget: Workers, Spec, CacheBudget/Shards

	mu        sync.Mutex
	helloRaw  []byte // payload of the accepted Hello
	shard     *Shard
	conns     map[net.Conn]struct{}
	listening bool
	closed    bool
	wg        sync.WaitGroup
}

// NewServer builds a daemon-side server over the node's loaded state.
// Fanouts/Seed/Engine in cfg are ignored — they arrive in the Hello.
func NewServer(csr *graph.CSR, feats *tensor.Tensor, ntypes int, model *nn.Model, cfg NodeConfig) *Server {
	return &Server{
		csr: csr, feats: feats, ntypes: ntypes, model: model, cfg: cfg,
		conns: make(map[net.Conn]struct{}),
	}
}

// Shard returns the lazily built shard (nil before the first accepted
// Hello).
func (sv *Server) Shard() *Shard {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.shard
}

// InFlight reports admitted-but-unanswered RPCs (0 before the first
// Hello) — the daemon's half of the drain invariant, printed at SIGTERM.
func (sv *Server) InFlight() int64 {
	if s := sv.Shard(); s != nil {
		return s.InFlight()
	}
	return 0
}

// Serve accepts connections until the listener is closed; each gets its
// own goroutine. It returns nil on a Close-initiated shutdown.
func (sv *Server) Serve(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			sv.mu.Lock()
			closed := sv.closed
			sv.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sv.mu.Lock()
		if sv.closed {
			sv.mu.Unlock()
			nc.Close()
			return nil
		}
		sv.conns[nc] = struct{}{}
		sv.wg.Add(1)
		sv.mu.Unlock()
		go sv.serveConn(nc)
	}
}

// Close stops serving: marks the server closed, closes every live
// connection (in-flight handlers see a broken write and unwind), waits
// for the handlers, then drains the shard's worker pool. The caller
// closes the listener.
func (sv *Server) Close() {
	sv.mu.Lock()
	sv.closed = true
	for nc := range sv.conns {
		nc.Close()
	}
	s := sv.shard
	sv.mu.Unlock()
	sv.wg.Wait()
	if s != nil {
		s.Close()
	}
}

func (sv *Server) dropConn(nc net.Conn) {
	sv.mu.Lock()
	delete(sv.conns, nc)
	sv.mu.Unlock()
	nc.Close()
	sv.wg.Done()
}

// serveConn runs one connection's strict Hello-then-request/reply loop.
func (sv *Server) serveConn(nc net.Conn) {
	defer sv.dropConn(nc)
	br := bufio.NewReaderSize(nc, 1<<16)
	bw := bufio.NewWriterSize(nc, 1<<16)
	send := func(frame []byte) bool {
		if _, err := bw.Write(frame); err != nil {
			return false
		}
		return bw.Flush() == nil
	}

	t, payload, err := wire.ReadFrame(br)
	if err != nil {
		return
	}
	if t != wire.MsgHello {
		send(wire.AppendError(nil, fmt.Sprintf("first frame is %v, want Hello", t)))
		return
	}
	s, err := sv.admit(payload)
	if err != nil {
		send(wire.AppendError(nil, err.Error()))
		return
	}
	if !send(wire.AppendHelloOK(nil)) {
		return
	}

	var buf []byte
	for {
		t, payload, err := wire.ReadFrame(br)
		if err != nil {
			return // EOF or broken peer; nothing to answer
		}
		buf = buf[:0]
		switch t {
		case wire.MsgExpand:
			args, err := wire.DecodeExpandArgs(payload)
			if err != nil {
				buf = wire.AppendError(buf, fmt.Sprintf("bad ExpandArgs: %v", err))
				break
			}
			rep, err := s.Expand(args)
			if err != nil {
				buf = wire.AppendError(buf, err.Error())
			} else {
				buf = wire.AppendExpandReply(buf, rep)
			}
		case wire.MsgCompute:
			args, err := wire.DecodeComputeArgs(payload)
			if err != nil {
				buf = wire.AppendError(buf, fmt.Sprintf("bad ComputeArgs: %v", err))
				break
			}
			rep, err := s.Compute(args)
			if err != nil {
				buf = wire.AppendError(buf, err.Error())
			} else {
				buf = wire.AppendComputeReply(buf, rep)
			}
		default:
			send(wire.AppendError(nil, fmt.Sprintf("unexpected %v", t)))
			return
		}
		if !send(buf) {
			return
		}
	}
}

// admit validates a Hello payload and returns the node's shard, building
// it on the first accepted handshake. Identity is sticky: every later
// Hello must be byte-identical to the first.
func (sv *Server) admit(payload []byte) (*Shard, error) {
	h, err := wire.DecodeHello(payload)
	if err != nil {
		return nil, fmt.Errorf("bad Hello: %v", err)
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.shard != nil {
		if string(payload) != string(sv.helloRaw) {
			return nil, fmt.Errorf("hello differs from the fleet this node already joined (shard %d)", sv.shard.id)
		}
		return sv.shard, nil
	}
	if err := sv.validate(h); err != nil {
		return nil, err
	}
	kind, gp, op, diff, err := joint.UnmarshalPlan(h.Plan)
	if err != nil {
		return nil, fmt.Errorf("bad plan: %v", err)
	}
	if kind != sv.model.Cfg.Kind {
		return nil, fmt.Errorf("plan is for %v, model is %v", kind, sv.model.Cfg.Kind)
	}
	plan := &joint.Result{Kind: kind, GraphPlan: gp, OpPlan: op, Differentiated: diff}
	cfg := sv.cfg
	cfg.Fanouts = make([]int, len(h.Fanouts))
	for i, f := range h.Fanouts {
		cfg.Fanouts[i] = int(f)
	}
	cfg.Seed = h.Seed
	cfg.Engine = h.Engine
	s, err := NewShard(int(h.ShardID), h.Lo, h.Hi, sv.csr, sv.feats, sv.ntypes, sv.model, plan, cfg)
	if err != nil {
		return nil, err
	}
	sv.shard = s
	sv.helloRaw = append([]byte(nil), payload...)
	return s, nil
}

// validate cross-checks everything the node can verify locally: protocol
// version, graph and model shape, bitwise parameter parity, and that the
// claimed owned range is exactly what the named placement policy derives
// on this node's copy of the graph.
func (sv *Server) validate(h *wire.Hello) error {
	nv := int64(len(sv.csr.RowPtr) - 1)
	ne := int64(len(sv.csr.Col))
	cfg := sv.model.Cfg
	switch {
	case h.Proto != wire.ProtoVersion:
		return fmt.Errorf("protocol %d, this node speaks %d", h.Proto, wire.ProtoVersion)
	case h.Shards < 1 || h.ShardID < 0 || h.ShardID >= h.Shards:
		return fmt.Errorf("shard id %d of %d", h.ShardID, h.Shards)
	case h.NumVertices != nv || h.NumEdges != ne:
		return fmt.Errorf("graph is %dv/%de on the router, %dv/%de here — different dataset", h.NumVertices, h.NumEdges, nv, ne)
	case int(h.NumTypes) != sv.ntypes:
		return fmt.Errorf("%d edge types on the router, %d here", h.NumTypes, sv.ntypes)
	case h.Kind != cfg.Kind.String():
		return fmt.Errorf("model %s on the router, %s here", h.Kind, cfg.Kind)
	case int(h.InDim) != cfg.InDim || int(h.Hidden) != cfg.Hidden || int(h.OutDim) != cfg.OutDim || int(h.Layers) != cfg.Layers:
		return fmt.Errorf("model shape %d/%d/%d×%d on the router, %d/%d/%d×%d here",
			h.InDim, h.Hidden, h.OutDim, h.Layers, cfg.InDim, cfg.Hidden, cfg.OutDim, cfg.Layers)
	case len(h.Fanouts) != cfg.Layers:
		return fmt.Errorf("%d fan-outs for a %d-layer model", len(h.Fanouts), cfg.Layers)
	}
	if sum := ParamSum(sv.model); h.ParamSum != sum {
		return fmt.Errorf("parameter hash %016x on the router, %016x here — different checkpoint", h.ParamSum, sum)
	}
	pl, err := ParsePlacement(h.Placement)
	if err != nil {
		return err
	}
	bounds := Boundaries(sv.csr, int(h.Shards), pl, sv.model.Cfg.InDim)
	if bounds[h.ShardID] != h.Lo || bounds[h.ShardID+1] != h.Hi {
		return fmt.Errorf("%s placement derives [%d,%d) for shard %d here, router claims [%d,%d)",
			h.Placement, bounds[h.ShardID], bounds[h.ShardID+1], h.ShardID, h.Lo, h.Hi)
	}
	return nil
}
