// Package hotcache is the serving tier's per-layer hot-vertex embedding
// cache: a memory-bounded, sharded map from (layer level, vertex id) to
// one embedding row — gathered input features at level 0, post-activation
// layer outputs above — with popularity-aware admission instead of plain
// LRU. Under Zipf-skewed serving traffic a small set of vertices accounts
// for most fan-out work, and reusing their rows across requests removes
// whole subtrees from sampling, partitioning and the gTask forward
// (CaPGNN's joint feature/embedding caching; BGL's hot-data admission).
//
// Admission is scored, not recency-ordered: a candidate enters only if
// score = (1+frequency) · (1+log2(1+degree)) · (1+level) beats a sampled
// resident victim. Frequency comes from a small count-min sketch fed by
// misses (so a row must prove popularity before it can displace another),
// degree because high-in-degree vertices amortize more sampled edges, and
// level because a deep row stands in for an entire fan-out subtree.
//
// The cache is versioned for checkpoint reloads: Get and Put both carry
// the caller's model version and are rejected on mismatch, and
// InvalidateTo flushes every shard when the served parameters change.
// Correctness never depends on cache policy — the serving forward is a
// pure function per vertex, so a hit returns exactly the bytes a miss
// would recompute; eviction and admission shape performance only.
package hotcache

import (
	"math"
	"sync"
	"sync/atomic"
)

// entryOverhead approximates the fixed per-entry cost (map bucket share,
// key, slice header, counters) charged against the byte budget on top of
// the row payload.
const entryOverhead = 96

// evictSample is how many resident entries an over-budget Put samples
// (via randomized map iteration) when looking for a victim.
const evictSample = 5

// Config sizes a Cache.
type Config struct {
	// Budget caps resident bytes across all shards (rows + per-entry
	// overhead). Zero or negative disables the cache (New returns nil).
	Budget int64
	// Shards is the lock-stripe count (default 8, rounded up to a power
	// of two). More shards cut contention across serving workers.
	Shards int
}

type entry struct {
	row  []float32
	hits uint32
	deg  int32
}

type shard struct {
	mu    sync.RWMutex
	m     map[uint64]*entry
	bytes int64
}

// Cache is a sharded, versioned, byte-budgeted embedding-row cache. All
// methods are safe for concurrent use and nil-safe: a nil *Cache behaves
// as an always-miss cache so callers need no enabled checks on hot paths.
type Cache struct {
	shards  []shard
	perCap  int64 // per-shard byte budget (budget/len(shards), truncated)
	budget  int64 // configured byte budget, reported as Snapshot.Capacity
	version atomic.Uint64
	sketch  sketch

	hits     atomic.Uint64
	misses   atomic.Uint64
	admitted atomic.Uint64
	evicted  atomic.Uint64
	rejected atomic.Uint64
	flushes  atomic.Uint64
}

// New builds a cache with the given byte budget; a non-positive budget
// returns nil (the always-miss cache).
func New(cfg Config) *Cache {
	if cfg.Budget <= 0 {
		return nil
	}
	n := cfg.Shards
	if n <= 0 {
		n = 8
	}
	for n&(n-1) != 0 {
		n++
	}
	c := &Cache{shards: make([]shard, n), perCap: cfg.Budget / int64(n), budget: cfg.Budget}
	if c.perCap < 1 {
		c.perCap = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*entry)
	}
	c.sketch.init()
	return c
}

// key packs (level, vertex) into the map key.
func key(level int, v int32) uint64 {
	return uint64(level)<<32 | uint64(uint32(v))
}

func (c *Cache) shardOf(k uint64) *shard {
	h := k * 0x9e3779b97f4a7c15
	return &c.shards[h>>32&uint64(len(c.shards)-1)]
}

// score ranks an entry for admission and eviction: observed or estimated
// popularity, amplified by in-degree (more sampled edges saved per hit)
// and by level (a deep row replaces a whole fan-out subtree).
func score(freq uint32, deg int32, level int) float64 {
	return float64(1+freq) * (1 + math.Log2(float64(1+deg))) * float64(1+level)
}

// Get copies the cached row for (level, v) into dst and reports a hit.
// ver must be the model version the caller's replica is synced to: a
// mismatch (reload in flight) is a miss. Misses feed the frequency
// sketch, which is what later earns the vertex admission.
func (c *Cache) Get(ver uint64, level int, v int32, dst []float32) bool {
	if c == nil {
		return false
	}
	k := key(level, v)
	if c.version.Load() == ver {
		s := c.shardOf(k)
		s.mu.RLock()
		e := s.m[k]
		if e != nil && len(e.row) == len(dst) {
			copy(dst, e.row)
			atomic.AddUint32(&e.hits, 1)
			s.mu.RUnlock()
			c.hits.Add(1)
			return true
		}
		s.mu.RUnlock()
	}
	c.misses.Add(1)
	if c.sketch.add(k) {
		c.decayResidents()
	}
	return false
}

// decayResidents halves every resident entry's hit counter. It runs on
// the same cadence as the sketch's TinyLFU aging so resident scores stay
// comparable to candidate estimates; without it a once-hot long-resident
// row's ever-growing count would make it unevictable after traffic
// shifts, pinning a stale working set. Halving races with concurrent hit
// increments exactly like the sketch's own aging; a lost increment only
// perturbs an approximate policy, never correctness.
func (c *Cache) decayResidents() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		for _, e := range s.m {
			atomic.StoreUint32(&e.hits, atomic.LoadUint32(&e.hits)/2)
		}
		s.mu.RUnlock()
	}
}

// Put offers a freshly computed row for admission. ver is the model
// version the row was computed under; a stale version is rejected so a
// checkpoint reload can never be poisoned by an in-flight batch. The row
// is copied, never retained.
func (c *Cache) Put(ver uint64, level int, v int32, deg int32, row []float32) bool {
	if c == nil {
		return false
	}
	k := key(level, v)
	size := int64(len(row))*4 + entryOverhead
	if size > c.perCap {
		c.rejected.Add(1)
		return false
	}
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	// Version re-check under the shard lock: InvalidateTo bumps the
	// version before sweeping shards, so a stale Put that raced past the
	// first check is caught here and can never land after the sweep.
	if c.version.Load() != ver {
		c.rejected.Add(1)
		return false
	}
	if _, ok := s.m[k]; ok {
		// Same version ⇒ identical bytes; nothing to refresh.
		return true
	}
	cand := score(c.sketch.estimate(k)+1, deg, level)
	for s.bytes+size > c.perCap {
		vk, victim := s.weakest()
		if victim == nil || score(atomic.LoadUint32(&victim.hits)+1, victim.deg, int(vk>>32)) >= cand {
			c.rejected.Add(1)
			return false
		}
		s.bytes -= int64(len(victim.row))*4 + entryOverhead
		delete(s.m, vk)
		c.evicted.Add(1)
	}
	s.m[k] = &entry{row: append([]float32(nil), row...), deg: deg}
	s.bytes += size
	c.admitted.Add(1)
	return true
}

// weakest samples up to evictSample resident entries (randomized map
// iteration) and returns the lowest-scored one. Called with s.mu held.
func (s *shard) weakest() (uint64, *entry) {
	var (
		bk    uint64
		best  *entry
		bestS float64
		n     int
	)
	for k, e := range s.m {
		sc := score(atomic.LoadUint32(&e.hits)+1, e.deg, int(k>>32))
		if best == nil || sc < bestS {
			bk, best, bestS = k, e, sc
		}
		if n++; n >= evictSample {
			break
		}
	}
	return bk, best
}

// Version returns the cache's current model version.
func (c *Cache) Version() uint64 {
	if c == nil {
		return 0
	}
	return c.version.Load()
}

// InvalidateTo flushes every resident row and moves the cache to model
// version ver — the wholesale invalidation a checkpoint reload performs.
// The version is published before the sweep, so concurrent Gets and Puts
// carrying the old version are rejected from the first moment any new
// parameters could be in use.
func (c *Cache) InvalidateTo(ver uint64) {
	if c == nil {
		return
	}
	c.version.Store(ver)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		clear(s.m)
		s.bytes = 0
		s.mu.Unlock()
	}
	c.sketch.reset()
	c.flushes.Add(1)
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits, Misses      uint64
	Admitted, Evicted uint64
	Rejected, Flushes uint64
	Bytes             int64 // resident bytes (rows + per-entry overhead)
	Entries           int
	Capacity          int64 // configured byte budget
}

// Snapshot returns the current counters; nil-safe (all zeros).
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Admitted: c.admitted.Load(),
		Evicted:  c.evicted.Load(),
		Rejected: c.rejected.Load(),
		Flushes:  c.flushes.Load(),
		Capacity: c.budget,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.RLock()
		st.Bytes += s.bytes
		st.Entries += len(s.m)
		s.mu.RUnlock()
	}
	return st
}

// sketch is a small count-min sketch over candidate keys: four rows of
// atomic counters with independent hash salts. It only has to separate
// the popular head from the one-shot tail, so it is deliberately tiny
// (4 × 2048 × 4 bytes) and approximate; over-estimates merely admit a
// borderline row the exact policy would have skipped.
type sketch struct {
	rows [4][]uint32
	adds atomic.Uint64
}

const sketchWidth = 2048

func (t *sketch) init() {
	for i := range t.rows {
		t.rows[i] = make([]uint32, sketchWidth)
	}
}

var sketchSalts = [4]uint64{0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0x2545f4914f6cdd1d}

func (t *sketch) slot(row int, k uint64) *uint32 {
	h := (k ^ sketchSalts[row]) * 0x9e3779b97f4a7c15
	return &t.rows[row][h>>48&(sketchWidth-1)]
}

// add feeds one miss into the sketch and reports whether this call
// performed the periodic aging sweep, so the cache can decay resident
// hit counters on the same cadence.
func (t *sketch) add(k uint64) bool {
	for i := range t.rows {
		atomic.AddUint32(t.slot(i, k), 1)
	}
	// TinyLFU-style aging: periodically halve every counter so stale
	// popularity decays. The halving races with concurrent adds; the
	// sketch is approximate by construction, so a lost increment is fine.
	if t.adds.Add(1)%(sketchWidth*8) != 0 {
		return false
	}
	for i := range t.rows {
		for j := range t.rows[i] {
			v := atomic.LoadUint32(&t.rows[i][j])
			atomic.StoreUint32(&t.rows[i][j], v/2)
		}
	}
	return true
}

func (t *sketch) estimate(k uint64) uint32 {
	min := atomic.LoadUint32(t.slot(0, k))
	for i := 1; i < len(t.rows); i++ {
		if v := atomic.LoadUint32(t.slot(i, k)); v < min {
			min = v
		}
	}
	return min
}

func (t *sketch) reset() {
	for i := range t.rows {
		for j := range t.rows[i] {
			atomic.StoreUint32(&t.rows[i][j], 0)
		}
	}
}
