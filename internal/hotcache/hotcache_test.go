package hotcache

import (
	"sync"
	"testing"
)

func row(dim int, fill float32) []float32 {
	r := make([]float32, dim)
	for i := range r {
		r[i] = fill
	}
	return r
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	if c != New(Config{Budget: 0}) {
		t.Fatal("zero budget must return the nil cache")
	}
	if New(Config{Budget: -5}) != nil {
		t.Fatal("negative budget must return the nil cache")
	}
	dst := row(4, 7)
	if c.Get(0, 1, 3, dst) {
		t.Fatal("nil cache reported a hit")
	}
	if c.Put(0, 1, 3, 10, row(4, 1)) {
		t.Fatal("nil cache accepted a Put")
	}
	c.InvalidateTo(9) // must not panic
	if v := c.Version(); v != 0 {
		t.Fatalf("nil cache version = %d", v)
	}
	if st := c.Snapshot(); st != (Stats{}) {
		t.Fatalf("nil cache snapshot = %+v, want zeros", st)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	c := New(Config{Budget: 1 << 20, Shards: 4})
	want := []float32{1, 2, 3, 4}
	if !c.Put(0, 2, 17, 5, want) {
		t.Fatal("Put rejected with ample budget")
	}
	// The row must be copied, not retained.
	want[0] = 99
	got := row(4, 0)
	if !c.Get(0, 2, 17, got) {
		t.Fatal("Get missed a just-admitted row")
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 4 {
		t.Fatalf("got %v, want the originally admitted bytes", got)
	}
	// Distinct (level, vertex) keys don't collide.
	if c.Get(0, 1, 17, got) || c.Get(0, 2, 18, got) {
		t.Fatal("hit on a key that was never admitted")
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Admitted != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 admitted / 1 entry", st)
	}
	if st.Bytes != 4*4+entryOverhead {
		t.Fatalf("resident bytes = %d, want %d", st.Bytes, 4*4+entryOverhead)
	}
}

func TestGetLengthMismatchIsMiss(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	c.Put(0, 0, 1, 3, row(8, 1))
	if c.Get(0, 0, 1, row(4, 0)) {
		t.Fatal("hit with a mismatched destination width")
	}
}

func TestVersionGating(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	if c.Put(5, 0, 1, 3, row(4, 1)) {
		t.Fatal("Put with a stale version must be rejected")
	}
	if !c.Put(0, 0, 1, 3, row(4, 1)) {
		t.Fatal("Put at the current version rejected")
	}
	if c.Get(5, 0, 1, row(4, 0)) {
		t.Fatal("Get with a mismatched version must miss")
	}
	if !c.Get(0, 0, 1, row(4, 0)) {
		t.Fatal("Get at the current version missed")
	}
}

func TestInvalidateToFlushes(t *testing.T) {
	c := New(Config{Budget: 1 << 20})
	for v := int32(0); v < 10; v++ {
		c.Put(0, 1, v, 4, row(4, float32(v)))
	}
	c.InvalidateTo(1)
	if got := c.Version(); got != 1 {
		t.Fatalf("version = %d, want 1", got)
	}
	st := c.Snapshot()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after flush: %d entries, %d bytes; want 0/0", st.Entries, st.Bytes)
	}
	if st.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1", st.Flushes)
	}
	// Old-version traffic is dead; new-version traffic works.
	if c.Put(0, 1, 3, 4, row(4, 1)) {
		t.Fatal("pre-flush version Put landed after InvalidateTo")
	}
	if !c.Put(1, 1, 3, 4, row(4, 1)) || !c.Get(1, 1, 3, row(4, 0)) {
		t.Fatal("current-version traffic broken after InvalidateTo")
	}
}

func TestOversizeRowRejected(t *testing.T) {
	c := New(Config{Budget: 256, Shards: 1})
	if c.Put(0, 0, 1, 3, row(1024, 1)) {
		t.Fatal("row larger than the shard budget was admitted")
	}
	if st := c.Snapshot(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
}

// TestScoredEviction pins the admission policy: when the budget is full,
// a popular high-degree candidate displaces a cold resident, and a cold
// candidate cannot displace a popular resident.
func TestScoredEviction(t *testing.T) {
	dim := 16
	size := int64(dim*4 + entryOverhead)
	c := New(Config{Budget: 2 * size, Shards: 1})

	// Two residents fill the shard; one of them earns hits.
	c.Put(0, 0, 1, 1, row(dim, 1))
	c.Put(0, 0, 2, 1, row(dim, 2))
	for i := 0; i < 50; i++ {
		c.Get(0, 0, 2, row(dim, 0)) // vertex 2 is hot
	}

	// A cold, never-seen candidate must lose to both residents.
	if c.Put(0, 0, 3, 1, row(dim, 3)) {
		t.Fatal("cold candidate displaced a resident")
	}

	// A candidate with proven popularity (misses feed the sketch) and
	// high degree must displace the cold resident, not the hot one.
	for i := 0; i < 50; i++ {
		c.Get(0, 0, 4, row(dim, 0)) // misses build frequency for vertex 4
	}
	if !c.Put(0, 0, 4, 1000, row(dim, 4)) {
		t.Fatal("popular high-degree candidate was not admitted")
	}
	if !c.Get(0, 0, 2, row(dim, 0)) {
		t.Fatal("the hot resident was evicted instead of the cold one")
	}
	if c.Get(0, 0, 1, row(dim, 0)) {
		t.Fatal("the cold resident survived a full-budget admission")
	}
	if st := c.Snapshot(); st.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", st.Evicted)
	}
}

func TestScoreOrdering(t *testing.T) {
	// More frequency, more degree, deeper level — each must strictly
	// increase the score.
	base := score(1, 10, 1)
	if score(5, 10, 1) <= base {
		t.Fatal("frequency does not increase score")
	}
	if score(1, 100, 1) <= base {
		t.Fatal("degree does not increase score")
	}
	if score(1, 10, 2) <= base {
		t.Fatal("level does not increase score")
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	c := New(Config{Budget: 4096, Shards: 2})
	for v := int32(0); v < 500; v++ {
		for i := 0; i < 3; i++ {
			c.Get(0, 0, v, row(8, 0)) // build sketch frequency so admissions happen
		}
		c.Put(0, 0, v, v%17, row(8, float32(v)))
		if st := c.Snapshot(); st.Bytes > st.Capacity {
			t.Fatalf("resident %d bytes exceeds capacity %d", st.Bytes, st.Capacity)
		}
	}
	if st := c.Snapshot(); st.Admitted == 0 {
		t.Fatal("nothing was ever admitted under churn")
	}
}

// TestCapacityReportsConfiguredBudget pins that Snapshot.Capacity is the
// configured budget, not the truncated per-shard sum — a budget that is
// not divisible by the shard count must not silently under-report.
func TestCapacityReportsConfiguredBudget(t *testing.T) {
	budget := int64(1<<20 + 3) // not divisible by 8 shards
	c := New(Config{Budget: budget, Shards: 8})
	if st := c.Snapshot(); st.Capacity != budget {
		t.Fatalf("Capacity = %d, want configured budget %d", st.Capacity, budget)
	}
}

// TestResidentHitsDecay pins that resident hit counters are halved on
// the sketch's aging cadence, so a once-hot row does not become
// permanently unevictable after traffic shifts.
func TestResidentHitsDecay(t *testing.T) {
	c := New(Config{Budget: 1 << 20, Shards: 1})
	c.Put(0, 0, 1, 3, row(4, 1))
	for i := 0; i < 40; i++ {
		c.Get(0, 0, 1, row(4, 0))
	}
	s := c.shardOf(key(0, 1))
	e := s.m[key(0, 1)]
	if e.hits != 40 {
		t.Fatalf("pre-decay hits = %d, want 40", e.hits)
	}
	c.decayResidents()
	if e.hits != 20 {
		t.Fatalf("post-decay hits = %d, want 20", e.hits)
	}
	// The decay must fire organically from miss traffic: after enough
	// misses to cross the aging threshold, the counter halves again.
	for i := 0; i < sketchWidth*8; i++ {
		c.Get(0, 1, int32(i), row(4, 0)) // all misses
	}
	if e.hits >= 20 {
		t.Fatalf("hits = %d after an aging sweep's worth of misses, want < 20", e.hits)
	}
}

func TestSketchEstimate(t *testing.T) {
	var s sketch
	s.init()
	for i := 0; i < 25; i++ {
		s.add(42)
	}
	if got := s.estimate(42); got < 25 {
		t.Fatalf("estimate(42) = %d, want >= 25 (count-min never undercounts)", got)
	}
	if got := s.estimate(43); got > 25 {
		t.Fatalf("estimate(43) = %d for a never-added key, want small", got)
	}
	s.reset()
	if got := s.estimate(42); got != 0 {
		t.Fatalf("estimate after reset = %d, want 0", got)
	}
}

func TestConcurrentAccessRace(t *testing.T) {
	c := New(Config{Budget: 1 << 16, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := row(8, 0)
			for i := 0; i < 500; i++ {
				v := int32((w*31 + i) % 64)
				if !c.Get(0, i%3, v, dst) {
					c.Put(0, i%3, v, v, dst)
				}
				if i%100 == 0 && w == 0 {
					c.InvalidateTo(c.Version())
				}
				c.Snapshot()
			}
		}(w)
	}
	wg.Wait()
}
