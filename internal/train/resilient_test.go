package train

import (
	"os"
	"path/filepath"
	"testing"

	"wisegraph/internal/fault"
	"wisegraph/internal/nn"
)

// resilientTrainer builds a fresh full-graph trainer over the tiny
// dataset with dropout on, so the RNG stream is part of the trajectory
// and a resume that fails to restore it is caught immediately.
func resilientTrainer(t *testing.T) *FullGraph {
	t.Helper()
	ds := tinyDataset(t)
	tr, err := NewFullGraph(ds, nn.Config{
		Kind: nn.SAGE, Hidden: 16, Layers: 2, Seed: 2, Dropout: 0.3,
	}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func losses(stats []EpochStats) []float64 {
	out := make([]float64, len(stats))
	for i, s := range stats {
		out[i] = s.Loss
	}
	return out
}

func requireBitIdentical(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d epochs, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: epoch %d loss %v, want %v (must be bit-identical)", what, i, got[i], want[i])
		}
	}
}

// TestResilientMatchesPlainRunWithoutFaults pins the baseline: with no
// schedule installed, RunResilient is Run plus checkpoints — identical
// losses, zero recoveries, fresh start.
func TestResilientMatchesPlainRunWithoutFaults(t *testing.T) {
	const epochs = 6
	clean := losses(resilientTrainer(t).Run(epochs))
	rep, err := resilientTrainer(t).RunResilient(epochs, 2, &MemStore{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recoveries != 0 || rep.SaveFailures != 0 || rep.ResumedFrom != -1 {
		t.Fatalf("clean run reported recoveries=%d saveFailures=%d resumedFrom=%d",
			rep.Recoveries, rep.SaveFailures, rep.ResumedFrom)
	}
	requireBitIdentical(t, losses(rep.Stats), clean, "unfaulted RunResilient")
}

// TestResilientRecoversBitIdenticalTrajectory is the resilience
// acceptance test: under a 25% per-epoch fault rate (each fault firing
// AFTER the epoch mutated params, moments and the dropout RNG), the
// recovered trajectory must match the uninterrupted run bit for bit —
// proving the checkpoint captures every input to the next epoch.
func TestResilientRecoversBitIdenticalTrajectory(t *testing.T) {
	const epochs = 8
	clean := losses(resilientTrainer(t).Run(epochs))
	var rep *ResilientReport
	var err error
	fault.WithSchedule(&fault.Schedule{
		Seed:  77,
		Sites: map[string]fault.SiteConfig{fault.SiteTrainStep: {ErrorRate: 0.25}},
	}, func() {
		rep, err = resilientTrainer(t).RunResilient(epochs, 2, &MemStore{})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recoveries == 0 {
		t.Fatal("schedule injected no epoch faults; recovery path untested")
	}
	requireBitIdentical(t, losses(rep.Stats), clean, "faulted RunResilient")
	t.Logf("recovered from %d faults, trajectory bit-identical", rep.Recoveries)
}

// TestResilientResumesAcrossProcesses models kill-and-restart: one run
// stops after 4 epochs, a brand-new trainer (fresh weights, fresh RNG)
// resumes from the same store and must land exactly where an
// uninterrupted 8-epoch run lands.
func TestResilientResumesAcrossProcesses(t *testing.T) {
	const half, epochs = 4, 8
	clean := losses(resilientTrainer(t).Run(epochs))
	store := &FileStore{Path: filepath.Join(t.TempDir(), "state.wsgt")}

	first, err := resilientTrainer(t).RunResilient(half, 2, store)
	if err != nil {
		t.Fatal(err)
	}
	if first.ResumedFrom != -1 {
		t.Fatalf("fresh store resumed from %d", first.ResumedFrom)
	}
	second, err := resilientTrainer(t).RunResilient(epochs, 2, store)
	if err != nil {
		t.Fatal(err)
	}
	if second.ResumedFrom != half {
		t.Fatalf("resumed from epoch %d, want %d", second.ResumedFrom, half)
	}
	combined := append(losses(first.Stats), losses(second.Stats)...)
	requireBitIdentical(t, combined, clean, "kill/restart trajectory")
}

// TestResilientBudgetExhaustion pins the give-up path: a 100% fault rate
// can never complete, and must surface an injected error instead of
// spinning forever.
func TestResilientBudgetExhaustion(t *testing.T) {
	fault.WithSchedule(&fault.Schedule{
		Seed:  5,
		Sites: map[string]fault.SiteConfig{fault.SiteTrainStep: {ErrorRate: 1}},
	}, func() {
		rep, err := resilientTrainer(t).RunResilient(3, 1, &MemStore{})
		if err == nil {
			t.Fatal("expected budget exhaustion at 100% fault rate")
		}
		if !fault.IsInjected(err) {
			t.Fatalf("error lost its injected marker: %v", err)
		}
		if rep == nil || rep.Recoveries == 0 {
			t.Fatal("no recoveries recorded before giving up")
		}
	})
}

// TestFileStoreAtomicSemantics checks the store contract directly: a
// missing file is ok=false, Save replaces whole blobs, and no temp files
// are left behind.
func TestFileStoreAtomicSemantics(t *testing.T) {
	dir := t.TempDir()
	s := &FileStore{Path: filepath.Join(dir, "ckpt.bin")}
	if _, ok, err := s.Load(); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	for _, blob := range [][]byte{[]byte("first"), []byte("second, longer blob")} {
		if err := s.Save(blob); err != nil {
			t.Fatal(err)
		}
		got, ok, err := s.Load()
		if err != nil || !ok || string(got) != string(blob) {
			t.Fatalf("round trip: got %q ok=%v err=%v", got, ok, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("store dir holds %d entries (temp files leaked?)", len(entries))
	}
}

// TestMemStoreDefensiveCopies checks the in-memory store does not alias
// caller buffers in either direction.
func TestMemStoreDefensiveCopies(t *testing.T) {
	s := &MemStore{}
	blob := []byte{1, 2, 3}
	if err := s.Save(blob); err != nil {
		t.Fatal(err)
	}
	blob[0] = 99
	got, ok, _ := s.Load()
	if !ok || got[0] != 1 {
		t.Fatalf("store aliased the saved buffer: %v", got)
	}
	got[1] = 42
	again, _, _ := s.Load()
	if again[1] != 2 {
		t.Fatal("store aliased the loaded buffer")
	}
}
