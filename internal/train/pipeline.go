package train

import (
	"sync"

	"wisegraph/internal/core"
	"wisegraph/internal/graph"
	"wisegraph/internal/joint"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/tensor"
)

// PreparedBatch is a mini-batch with all CPU-side work done: the sampled
// subgraph, its features/labels, and the gTask partition under the tuned
// plan — everything the accelerator-side step consumes.
type PreparedBatch struct {
	Sub    *graph.Subgraph
	X      *tensor.Tensor
	Labels []int32
	Mask   []int32
	Part   *core.Partition
}

// Pipeline overlaps sampling and gTask partitioning with training on CPU
// worker goroutines — the asynchronous execution of paper Figure 21(b):
// the tuned plan is reused for every subgraph, so per-batch CPU work is
// one O(E) partition that hides under the training step.
type Pipeline struct {
	batches chan *PreparedBatch
	stop    chan struct{}
	wg      sync.WaitGroup
	once    sync.Once
}

// NewPipeline starts workers sampler goroutines feeding a buffered queue
// of depth prepared batches. Each worker samples independent mini-batches
// (seeds strided across the training set, per-worker RNG streams) and
// partitions them under plan's graph partition plan.
func NewPipeline(s *Sampled, plan *joint.Result, workers, depth int) *Pipeline {
	if workers < 1 {
		workers = 1
	}
	if depth < workers {
		depth = workers
	}
	p := &Pipeline{
		batches: make(chan *PreparedBatch, depth),
		stop:    make(chan struct{}),
	}
	if len(s.DS.TrainMask) == 0 {
		// No training vertices to sample seeds from: return a closed,
		// empty pipeline instead of letting workers divide by zero.
		p.Close()
		return p
	}
	csr := s.DS.Graph.BuildCSRByDst()
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func(w int) {
			defer p.wg.Done()
			rng := tensor.NewRNG(uint64(w)*0x9e3779b97f4a7c15 + 0x51)
			pt := core.NewPartitioner()
			defer pt.Release()
			cursor := w * s.BatchSize % len(s.DS.TrainMask)
			for {
				seeds := make([]int32, 0, s.BatchSize)
				for len(seeds) < s.BatchSize {
					seeds = append(seeds, s.DS.TrainMask[cursor])
					cursor = (cursor + workers) % len(s.DS.TrainMask)
				}
				id := obs.NewID()
				sp := obs.Begin(obs.StageSample, id)
				sub := graph.NeighborSample(s.DS.Graph, csr, seeds, s.Fanouts, rng)
				sp.End()
				sp = obs.Begin(obs.StagePartition, id)
				part := ReusePlanWith(pt, plan, sub.Graph)
				sp.End()
				mask := make([]int32, sub.NumSeeds)
				for i := range mask {
					mask[i] = int32(i)
				}
				sp = obs.Begin(obs.StageCollective, id)
				x := sub.GatherFeatures(s.DS.Features)
				labels := sub.GatherLabels(s.DS.Labels)
				sp.End()
				b := &PreparedBatch{
					Sub:    sub,
					X:      x,
					Labels: labels,
					Mask:   mask,
					Part:   part,
				}
				select {
				case p.batches <- b:
				case <-p.stop:
					return
				}
			}
		}(w)
	}
	return p
}

// Next blocks for the next prepared batch (nil after Close).
func (p *Pipeline) Next() *PreparedBatch {
	select {
	case b := <-p.batches:
		return b
	case <-p.stop:
		// drain anything already queued so Close never loses a batch
		select {
		case b := <-p.batches:
			return b
		default:
			return nil
		}
	}
}

// Close stops the workers and waits for them to exit. Safe to call more
// than once.
func (p *Pipeline) Close() {
	p.once.Do(func() {
		close(p.stop)
		// unblock workers stuck on a full queue
		go func() {
			for range p.batches {
			}
		}()
		p.wg.Wait()
		close(p.batches)
	})
}

// TrainPipelined runs iters training steps consuming the pipeline,
// returning the per-iteration losses. It is the overlapped counterpart of
// calling Iteration in a loop.
func (s *Sampled) TrainPipelined(plan *joint.Result, workers, iters int) []float64 {
	p := NewPipeline(s, plan, workers, 2*workers)
	defer p.Close()
	losses := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		b := p.Next()
		if b == nil {
			break
		}
		id := obs.NewID()
		step := obs.Begin(obs.StageStep, id)
		gc := nn.NewGraphCtx(b.Sub.Graph)
		sp := obs.Begin(obs.StageExec, id)
		losses = append(losses, s.Model.TrainStep(gc, b.X, b.Labels, b.Mask, s.Opt))
		sp.End()
		step.End()
	}
	return losses
}
