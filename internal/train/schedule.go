package train

import "math"

// LRSchedule maps an epoch index to a learning-rate multiplier.
type LRSchedule interface {
	// Factor returns the multiplier applied to the base learning rate at
	// the given epoch (0-based).
	Factor(epoch int) float64
}

// ConstantLR keeps the base rate.
type ConstantLR struct{}

// Factor implements LRSchedule.
func (ConstantLR) Factor(int) float64 { return 1 }

// StepLR multiplies the rate by Gamma every StepSize epochs.
type StepLR struct {
	StepSize int
	Gamma    float64
}

// Factor implements LRSchedule.
func (s StepLR) Factor(epoch int) float64 {
	if s.StepSize <= 0 {
		return 1
	}
	return math.Pow(s.Gamma, float64(epoch/s.StepSize))
}

// CosineLR anneals from 1 to MinFactor over Epochs.
type CosineLR struct {
	Epochs    int
	MinFactor float64
}

// Factor implements LRSchedule.
func (c CosineLR) Factor(epoch int) float64 {
	if c.Epochs <= 1 {
		return 1
	}
	t := float64(epoch) / float64(c.Epochs-1)
	if t > 1 {
		t = 1
	}
	return c.MinFactor + (1-c.MinFactor)*0.5*(1+math.Cos(math.Pi*t))
}

// EarlyStopper tracks validation accuracy and signals when it has not
// improved for Patience epochs.
type EarlyStopper struct {
	Patience int
	best     float64
	since    int
	started  bool
}

// Observe records an epoch's validation metric and reports whether
// training should stop.
func (e *EarlyStopper) Observe(valAcc float64) (stop bool) {
	if !e.started || valAcc > e.best {
		e.best = valAcc
		e.since = 0
		e.started = true
		return false
	}
	e.since++
	return e.Patience > 0 && e.since >= e.Patience
}

// Best returns the best metric seen.
func (e *EarlyStopper) Best() float64 { return e.best }

// RunSchedule trains like Run but applies a learning-rate schedule and an
// optional early stopper; it returns the stats of the epochs actually run.
func (t *FullGraph) RunSchedule(epochs int, baseLR float64, sched LRSchedule, stopper *EarlyStopper) []EpochStats {
	if sched == nil {
		sched = ConstantLR{}
	}
	out := make([]EpochStats, 0, epochs)
	for ep := 0; ep < epochs; ep++ {
		t.Opt.LR = baseLR * sched.Factor(ep)
		loss := t.Epoch()
		st := EpochStats{
			Epoch:   ep,
			Loss:    loss,
			ValAcc:  t.Model.Accuracy(t.GC, t.DS.Features, t.DS.Labels, t.DS.ValMask),
			TestAcc: t.Model.Accuracy(t.GC, t.DS.Features, t.DS.Labels, t.DS.TestMask),
		}
		out = append(out, st)
		if stopper != nil && stopper.Observe(st.ValAcc) {
			break
		}
	}
	return out
}
