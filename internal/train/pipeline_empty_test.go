package train

import (
	"testing"

	"wisegraph/internal/device"
)

// TestPipelineEmptyTrainMask is a regression test: NewPipeline used to
// divide by len(TrainMask) in its seed-striding workers, panicking on
// datasets with no training vertices. It must instead return an empty,
// already-closed pipeline.
func TestPipelineEmptyTrainMask(t *testing.T) {
	s, _ := pipelineSetup(t)
	plan := s.TunePlans(device.A100(), 1)
	s.DS.TrainMask = nil
	p := NewPipeline(s, plan, 2, 4)
	defer p.Close()
	if b := p.Next(); b != nil {
		t.Fatalf("empty pipeline produced a batch: %+v", b)
	}
	p.Close() // second Close must be a no-op
	if b := p.Next(); b != nil {
		t.Fatal("closed pipeline produced a batch")
	}
}
