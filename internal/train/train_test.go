package train

import (
	"math"
	"testing"

	"wisegraph/internal/dataset"
	"wisegraph/internal/device"
	"wisegraph/internal/nn"
)

func tinyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Load("AR", dataset.Options{
		Scale: 400, FeatureDim: 16, Seed: 1, Homophily: 0.85, FeatureNoise: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFullGraphTrainingImprovesAccuracy(t *testing.T) {
	ds := tinyDataset(t)
	tr, err := NewFullGraph(ds, nn.Config{Kind: nn.SAGE, Hidden: 16, Layers: 2, Seed: 2}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	stats := tr.Run(25)
	if len(stats) != 25 {
		t.Fatalf("got %d epochs", len(stats))
	}
	first, last := stats[0], stats[len(stats)-1]
	if last.Loss >= first.Loss {
		t.Fatalf("loss did not improve: %.4f → %.4f", first.Loss, last.Loss)
	}
	if last.ValAcc <= first.ValAcc {
		t.Fatalf("val accuracy did not improve: %.3f → %.3f", first.ValAcc, last.ValAcc)
	}
	if last.TestAcc < 0.3 {
		t.Fatalf("test accuracy %.3f too low after 25 epochs", last.TestAcc)
	}
}

func TestGTaskAccuracyParity(t *testing.T) {
	// Figure 14: WiseGraph's execution must not change accuracy.
	ds := tinyDataset(t)
	tr, err := NewFullGraph(ds, nn.Config{Kind: nn.GCN, Hidden: 16, Layers: 2, Seed: 3}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run(15)
	ref := tr.Model.Accuracy(tr.GC, ds.Features, ds.Labels, ds.TestMask)
	res := tr.Tune(device.A100())
	gtask, err := tr.GTaskTestAccuracy(res)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ref-gtask) > 0.01 {
		t.Fatalf("accuracy parity violated: reference %.4f vs gTask %.4f", ref, gtask)
	}
}

func TestSampledTrainingRuns(t *testing.T) {
	ds := tinyDataset(t)
	tr, err := NewSampled(ds, nn.Config{Kind: nn.SAGE, Hidden: 16, Layers: 2, Seed: 4}, 0.01, []int{5, 5}, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.Iteration()
	var last float64
	for i := 0; i < 20; i++ {
		last = tr.Iteration()
	}
	if math.IsNaN(last) || last <= 0 {
		t.Fatalf("loss = %v", last)
	}
	if last > first*1.5 {
		t.Fatalf("sampled loss diverged: %.4f → %.4f", first, last)
	}
}

func TestSampledBatchesCycleThroughSeeds(t *testing.T) {
	ds := tinyDataset(t)
	tr, _ := NewSampled(ds, nn.Config{Kind: nn.GCN, Hidden: 8, Layers: 2, Seed: 5}, 0.01, []int{3}, 8, 10)
	b1 := tr.NextBatch()
	b2 := tr.NextBatch()
	if b1.NumSeeds != 8 || b2.NumSeeds != 8 {
		t.Fatalf("batch seed counts: %d %d", b1.NumSeeds, b2.NumSeeds)
	}
	// different cursor → different seed sets
	if b1.Vertices[0] == b2.Vertices[0] {
		t.Fatal("cursor did not advance")
	}
}

func TestTunePlansAndReuse(t *testing.T) {
	ds := tinyDataset(t)
	tr, _ := NewSampled(ds, nn.Config{Kind: nn.GCN, Hidden: 16, Layers: 2, Seed: 6}, 0.01, []int{5, 5}, 16, 11)
	res := tr.TunePlans(device.A100(), 2)
	if res == nil || res.Seconds <= 0 {
		t.Fatal("tuning produced no result")
	}
	// reuse on a fresh subgraph: partition valid, same plan
	sub := tr.NextBatch()
	part := ReusePlan(res, sub.Graph)
	if err := part.Validate(); err != nil {
		t.Fatal(err)
	}
	if part.Plan.Name != res.GraphPlan.Name {
		t.Fatalf("reused plan %q differs from tuned %q", part.Plan.Name, res.GraphPlan.Name)
	}
}

func TestOverlapModel(t *testing.T) {
	o := OverlapModel{SampleSeconds: 60, PartitionSeconds: 60, EpochSeconds: 10}
	s1, sp1, ep := o.At(1)
	if s1 != 60 || sp1 != 120 || ep != 10 {
		t.Fatalf("single thread: %v %v %v", s1, sp1, ep)
	}
	// 12 threads: 120/12 = 10 ≤ epoch → fully overlapped
	if got := o.FullyOverlappedAt(24); got != 12 {
		t.Fatalf("fully overlapped at %d, want 12", got)
	}
	// impossible case
	o2 := OverlapModel{SampleSeconds: 1e6, PartitionSeconds: 0, EpochSeconds: 0.001}
	if o2.FullyOverlappedAt(8) != 0 {
		t.Fatal("should report never overlapped")
	}
}

func TestRunScheduleCosineAndEarlyStop(t *testing.T) {
	ds := tinyDataset(t)
	tr, err := NewFullGraph(ds, nn.Config{Kind: nn.GCN, Hidden: 16, Layers: 2, Seed: 61}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	stats := tr.RunSchedule(30, 0.02, CosineLR{Epochs: 30, MinFactor: 0.05}, &EarlyStopper{Patience: 8})
	if len(stats) == 0 {
		t.Fatal("no epochs ran")
	}
	if stats[len(stats)-1].Loss >= stats[0].Loss {
		t.Fatalf("scheduled training did not learn: %.4f → %.4f",
			stats[0].Loss, stats[len(stats)-1].Loss)
	}
}

func TestSchedulesMath(t *testing.T) {
	c := CosineLR{Epochs: 11, MinFactor: 0.1}
	if f := c.Factor(0); f < 0.999 || f > 1.001 {
		t.Fatalf("cosine start %v", f)
	}
	if f := c.Factor(10); f < 0.099 || f > 0.101 {
		t.Fatalf("cosine end %v", f)
	}
	if f := c.Factor(5); f < 0.54 || f > 0.56 { // midpoint = (1+0.1)/2
		t.Fatalf("cosine mid %v", f)
	}
	s := StepLR{StepSize: 10, Gamma: 0.5}
	if s.Factor(9) != 1 || s.Factor(10) != 0.5 || s.Factor(25) != 0.25 {
		t.Fatal("step schedule wrong")
	}
	if (ConstantLR{}).Factor(100) != 1 {
		t.Fatal("constant schedule wrong")
	}
	if (StepLR{}).Factor(5) != 1 {
		t.Fatal("degenerate step schedule must be constant")
	}
	if (CosineLR{Epochs: 1}).Factor(0) != 1 {
		t.Fatal("single-epoch cosine must be constant")
	}
}

func TestEarlyStopper(t *testing.T) {
	e := &EarlyStopper{Patience: 2}
	seq := []float64{0.1, 0.2, 0.15, 0.18, 0.19}
	var stoppedAt int = -1
	for i, v := range seq {
		if e.Observe(v) {
			stoppedAt = i
			break
		}
	}
	if stoppedAt != 3 {
		t.Fatalf("stopped at %d, want 3 (two epochs without beating 0.2)", stoppedAt)
	}
	if e.Best() != 0.2 {
		t.Fatalf("best = %v", e.Best())
	}
	// patience 0 disables stopping
	e2 := &EarlyStopper{}
	for _, v := range seq {
		if e2.Observe(v) {
			t.Fatal("patience 0 must never stop")
		}
	}
}
