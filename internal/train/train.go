// Package train provides the end-to-end training loops: full-graph
// training (the paper's primary target), sampled-graph training with
// one-shot plan tuning and reuse (§6.3 "working with sampled graph
// training"), and the accuracy-parity evaluation of Figure 14.
package train

import (
	"fmt"
	"time"

	"wisegraph/internal/core"
	"wisegraph/internal/dataset"
	"wisegraph/internal/device"
	"wisegraph/internal/exec"
	"wisegraph/internal/graph"
	"wisegraph/internal/joint"
	"wisegraph/internal/kernels"
	"wisegraph/internal/nn"
	"wisegraph/internal/obs"
	"wisegraph/internal/tensor"
)

// EpochStats records one epoch of training.
type EpochStats struct {
	Epoch    int
	Loss     float64
	ValAcc   float64
	TestAcc  float64
	Duration time.Duration
}

// FullGraph trains a model on an entire dataset.
type FullGraph struct {
	DS    *dataset.Dataset
	Model *nn.Model
	GC    *nn.GraphCtx
	Opt   *nn.Adam

	engine string // execution engine for the gTask path ("" = blocked)
}

// UseEngine selects the execution engine (see kernels.EngineNames) for
// both the training layers and the gTask evaluation path. The "fused"
// engine switches the nn layers to their streaming dataflow, which is
// bitwise-identical to the blocked one; "device" trains with blocked
// numerics but evaluates with per-stage kernel accounting.
func (t *FullGraph) UseEngine(name string) error {
	if _, err := kernels.Select(name); err != nil {
		return err
	}
	t.engine = name
	if name == "fused" {
		t.GC.SetExec(nn.ExecFused)
	} else {
		t.GC.SetExec(nn.ExecBlocked)
	}
	return nil
}

// Engine reports the selected execution engine name ("" = blocked).
func (t *FullGraph) Engine() string { return t.engine }

// NewFullGraph builds a trainer. cfg.InDim/OutDim are filled from the
// dataset if zero.
func NewFullGraph(ds *dataset.Dataset, cfg nn.Config, lr float64) (*FullGraph, error) {
	if cfg.InDim == 0 {
		cfg.InDim = ds.Dim()
	}
	if cfg.OutDim == 0 {
		cfg.OutDim = ds.Classes()
	}
	if cfg.NumTypes == 0 {
		cfg.NumTypes = ds.Graph.NumTypes
	}
	m, err := nn.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	return &FullGraph{
		DS:    ds,
		Model: m,
		GC:    nn.NewGraphCtx(ds.Graph),
		Opt:   nn.NewAdam(lr, m.Params()),
	}, nil
}

// Epoch runs one full-graph training epoch and returns the loss.
func (t *FullGraph) Epoch() float64 {
	id := obs.NewID()
	step := obs.Begin(obs.StageStep, id)
	sp := obs.Begin(obs.StageExec, id)
	loss := t.Model.TrainStep(t.GC, t.DS.Features, t.DS.Labels, t.DS.TrainMask, t.Opt)
	sp.End()
	step.End()
	return loss
}

// Run trains for epochs epochs, evaluating validation/test accuracy each
// epoch (the Figure 14b curve).
func (t *FullGraph) Run(epochs int) []EpochStats {
	out := make([]EpochStats, 0, epochs)
	for ep := 0; ep < epochs; ep++ {
		start := time.Now()
		loss := t.Epoch()
		st := EpochStats{
			Epoch:    ep,
			Loss:     loss,
			ValAcc:   t.Model.Accuracy(t.GC, t.DS.Features, t.DS.Labels, t.DS.ValMask),
			TestAcc:  t.Model.Accuracy(t.GC, t.DS.Features, t.DS.Labels, t.DS.TestMask),
			Duration: time.Since(start),
		}
		out = append(out, st)
	}
	return out
}

// GTaskTestAccuracy evaluates test accuracy with the logits produced by
// the gTask execution path instead of the reference forward — the
// accuracy-parity check: WiseGraph's optimizations must not change
// predictions (paper Figure 14, "accuracy difference within 1%"; here the
// executions are bit-for-bit near-identical).
func (t *FullGraph) GTaskTestAccuracy(res *joint.Result) (float64, error) {
	ctx := exec.NewCtx(device.New(device.A100()))
	ctx.Engine = t.engine
	part := res.Partition
	if part.Graph != t.DS.Graph {
		part = core.PartitionGraph(t.DS.Graph, res.GraphPlan, searchAttrs)
	}
	logits, err := kernels.RunModel(ctx, t.GC, t.Model, t.DS.Features, part, res.OpPlan)
	if err != nil {
		return 0, err
	}
	pred := tensor.ArgMaxRows(logits)
	correct := 0
	for _, v := range t.DS.TestMask {
		if pred[v] == t.DS.Labels[v] {
			correct++
		}
	}
	if len(t.DS.TestMask) == 0 {
		return 0, fmt.Errorf("train: empty test mask")
	}
	return float64(correct) / float64(len(t.DS.TestMask)), nil
}

var searchAttrs = []core.Attr{core.AttrSrcID, core.AttrDstID, core.AttrEdgeType, core.AttrDstDegree}

// Tune runs the joint optimization for this trainer's model and graph.
func (t *FullGraph) Tune(spec device.Spec) *joint.Result {
	hidden := t.Model.Cfg.Hidden
	return joint.Search(t.DS.Graph, t.Model.Cfg.Kind, hidden, hidden, t.Model.Cfg.NumTypes, joint.Options{Spec: spec})
}

// Sampled trains on neighbor-sampled subgraphs (mini-batch training).
type Sampled struct {
	DS        *dataset.Dataset
	Model     *nn.Model
	Opt       *nn.Adam
	Fanouts   []int
	BatchSize int

	csr    *graph.CSR
	rng    *tensor.RNG
	cursor int
	mask   []int32 // reused seed-mask buffer
	exec   nn.Exec // layer dataflow for per-batch subgraph contexts
}

// UseEngine selects the execution engine for mini-batch training. Only
// "fused" changes the layer dataflow (bitwise-identically); "device"
// trains with blocked numerics like the default.
func (s *Sampled) UseEngine(name string) error {
	if _, err := kernels.Select(name); err != nil {
		return err
	}
	if name == "fused" {
		s.exec = nn.ExecFused
	} else {
		s.exec = nn.ExecBlocked
	}
	return nil
}

// NewSampled builds a sampled-graph trainer with the paper's 20-15-10
// style fan-out (configurable).
func NewSampled(ds *dataset.Dataset, cfg nn.Config, lr float64, fanouts []int, batch int, seed uint64) (*Sampled, error) {
	if cfg.InDim == 0 {
		cfg.InDim = ds.Dim()
	}
	if cfg.OutDim == 0 {
		cfg.OutDim = ds.Classes()
	}
	if cfg.NumTypes == 0 {
		cfg.NumTypes = ds.Graph.NumTypes
	}
	m, err := nn.NewModel(cfg)
	if err != nil {
		return nil, err
	}
	return &Sampled{
		DS:        ds,
		Model:     m,
		Opt:       nn.NewAdam(lr, m.Params()),
		Fanouts:   fanouts,
		BatchSize: batch,
		csr:       ds.Graph.BuildCSRByDst(),
		rng:       tensor.NewRNG(seed ^ 0x5a5a),
	}, nil
}

// NextBatch samples the next mini-batch subgraph over training seeds.
func (s *Sampled) NextBatch() *graph.Subgraph {
	seeds := make([]int32, 0, s.BatchSize)
	for len(seeds) < s.BatchSize {
		seeds = append(seeds, s.DS.TrainMask[s.cursor])
		s.cursor = (s.cursor + 1) % len(s.DS.TrainMask)
	}
	return graph.NeighborSample(s.DS.Graph, s.csr, seeds, s.Fanouts, s.rng)
}

// Iteration samples a subgraph and runs one training step on it,
// returning the loss over the seed vertices.
func (s *Sampled) Iteration() float64 {
	id := obs.NewID()
	step := obs.Begin(obs.StageStep, id)
	sp := obs.Begin(obs.StageSample, id)
	sub := s.NextBatch()
	sp.End()
	gc := nn.NewGraphCtx(sub.Graph)
	gc.SetExec(s.exec)
	sp = obs.Begin(obs.StageCollective, id)
	x := sub.GatherFeatures(s.DS.Features)
	labels := sub.GatherLabels(s.DS.Labels)
	sp.End()
	s.mask = s.mask[:0]
	for i := 0; i < sub.NumSeeds; i++ {
		s.mask = append(s.mask, int32(i))
	}
	sp = obs.Begin(obs.StageExec, id)
	loss := s.Model.TrainStep(gc, x, labels, s.mask, s.Opt)
	sp.End()
	step.End()
	return loss
}

// TunePlans runs the joint search on a few sampled subgraphs and returns
// the plan of the best-performing one — the one-shot tuning the paper
// then reuses across all iterations (§6.3).
func (s *Sampled) TunePlans(spec device.Spec, subgraphs int) *joint.Result {
	var best *joint.Result
	hidden := s.Model.Cfg.Hidden
	for i := 0; i < subgraphs; i++ {
		sub := s.NextBatch()
		r := joint.Search(sub.Graph, s.Model.Cfg.Kind, hidden, hidden, s.Model.Cfg.NumTypes, joint.Options{Spec: spec})
		if best == nil || r.Seconds < best.Seconds {
			best = r
		}
	}
	return best
}

// ReusePlan applies a previously tuned graph plan to a fresh subgraph
// without searching: O(E) partitioning only, which runs on CPU threads
// overlapped with training (Figure 21b).
func ReusePlan(res *joint.Result, g *graph.Graph) *core.Partition {
	return core.PartitionGraph(g, res.GraphPlan, searchAttrs)
}

// ReusePlanWith is ReusePlan through a caller-owned Partitioner: pipeline
// workers hold one each, so steady-state per-batch partitioning reuses
// the worker's sort columns and stamp arrays instead of competing over
// the shared pool.
func ReusePlanWith(pt *core.Partitioner, res *joint.Result, g *graph.Graph) *core.Partition {
	return pt.Partition(g, res.GraphPlan, searchAttrs)
}

// OverlapModel prices the asynchronous CPU pipeline of Figure 21(b):
// per-epoch sampling and partitioning cost divided across CPU threads,
// compared to the epoch compute time they must hide under.
type OverlapModel struct {
	SampleSeconds    float64 // single-thread sampling cost per epoch
	PartitionSeconds float64 // single-thread partitioning cost per epoch
	EpochSeconds     float64 // GPU epoch time to overlap with
}

// At returns (sampleOnly, sampleAndPartition, epoch) times with the given
// CPU thread count; overlap is complete when sampleAndPartition ≤ epoch.
func (o OverlapModel) At(threads int) (sample, samplePlusOpt, epoch float64) {
	t := float64(threads)
	if t < 1 {
		t = 1
	}
	return o.SampleSeconds / t, (o.SampleSeconds + o.PartitionSeconds) / t, o.EpochSeconds
}

// FullyOverlappedAt returns the smallest thread count at which the CPU
// pipeline hides under the epoch time (0 if never within maxThreads).
func (o OverlapModel) FullyOverlappedAt(maxThreads int) int {
	for th := 1; th <= maxThreads; th++ {
		_, sp, ep := o.At(th)
		if sp <= ep {
			return th
		}
	}
	return 0
}

// Metrics evaluates full classification metrics (accuracy, macro-F1,
// confusion) over the given vertex set.
func (t *FullGraph) Metrics(mask []int32) (nn.Metrics, error) {
	logits := t.Model.Forward(t.GC, t.DS.Features)
	pred := tensor.ArgMaxRows(logits)
	return nn.Evaluate(pred, t.DS.Labels, mask, t.DS.Classes())
}
