package train

import (
	"math"
	"testing"

	"wisegraph/internal/device"
	"wisegraph/internal/nn"
)

func pipelineSetup(t *testing.T) (*Sampled, *FullGraph) {
	t.Helper()
	ds := tinyDataset(t)
	s, err := NewSampled(ds, nn.Config{Kind: nn.SAGE, Hidden: 16, Layers: 2, Seed: 21}, 0.01, []int{5, 5}, 16, 22)
	if err != nil {
		t.Fatal(err)
	}
	return s, nil
}

func TestPipelineProducesValidBatches(t *testing.T) {
	s, _ := pipelineSetup(t)
	plan := s.TunePlans(device.A100(), 1)
	p := NewPipeline(s, plan, 3, 6)
	defer p.Close()
	for i := 0; i < 10; i++ {
		b := p.Next()
		if b == nil {
			t.Fatal("pipeline returned nil while open")
		}
		if b.Sub.NumSeeds != 16 {
			t.Fatalf("batch %d: %d seeds", i, b.Sub.NumSeeds)
		}
		if err := b.Sub.Graph.Validate(); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if err := b.Part.Validate(); err != nil {
			t.Fatalf("batch %d partition: %v", i, err)
		}
		if b.Part.Plan.Name != plan.GraphPlan.Name {
			t.Fatalf("batch %d: plan %q, want %q", i, b.Part.Plan.Name, plan.GraphPlan.Name)
		}
		if b.X.Rows() != b.Sub.Graph.NumVertices || len(b.Labels) != b.Sub.Graph.NumVertices {
			t.Fatalf("batch %d: misaligned features/labels", i)
		}
	}
}

func TestPipelineCloseTerminates(t *testing.T) {
	s, _ := pipelineSetup(t)
	plan := s.TunePlans(device.A100(), 1)
	p := NewPipeline(s, plan, 4, 4)
	_ = p.Next()
	p.Close() // must not deadlock even with workers blocked on a full queue
	p.Close() // idempotent
}

func TestTrainPipelinedConverges(t *testing.T) {
	s, _ := pipelineSetup(t)
	plan := s.TunePlans(device.A100(), 1)
	// 80 iterations sit right on the 10% improvement bar: batch order is
	// timing-dependent across workers, and an unlucky schedule (e.g.
	// under -race on one core) can land just short. 240 steps put the
	// expected improvement well past the threshold for every ordering.
	const iters = 240
	losses := s.TrainPipelined(plan, 3, iters)
	if len(losses) != iters {
		t.Fatalf("got %d losses", len(losses))
	}
	for _, l := range losses {
		if math.IsNaN(l) || l <= 0 {
			t.Fatalf("bad loss %v", l)
		}
	}
	// batch order is nondeterministic across workers, so compare wide
	// windows: mean of the last 30 must undercut the first 30 clearly
	head, tail := 0.0, 0.0
	for i := 0; i < 30; i++ {
		head += losses[i]
		tail += losses[len(losses)-1-i]
	}
	if tail >= head*0.9 {
		t.Fatalf("pipelined training did not improve: head %.3f tail %.3f", head/30, tail/30)
	}
}

func TestPipelineWorkersCoverDistinctSeeds(t *testing.T) {
	s, _ := pipelineSetup(t)
	plan := s.TunePlans(device.A100(), 1)
	p := NewPipeline(s, plan, 2, 4)
	defer p.Close()
	// two consecutive batches should not target an identical seed set
	b1 := p.Next()
	b2 := p.Next()
	same := true
	for i := 0; i < b1.Sub.NumSeeds && i < b2.Sub.NumSeeds; i++ {
		if b1.Sub.Vertices[i] != b2.Sub.Vertices[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("workers produced identical seed batches")
	}
}
