package train

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"wisegraph/internal/fault"
)

// Store persists train-state blobs for crash recovery. Save must be
// atomic: a reader never observes a half-written blob, and a failed Save
// leaves the previous blob intact.
type Store interface {
	// Save durably replaces the stored blob.
	Save(data []byte) error
	// Load returns the stored blob, or ok=false when nothing was saved.
	Load() ([]byte, bool, error)
}

// MemStore keeps the blob in memory — the test and single-process store.
type MemStore struct {
	mu   sync.Mutex
	data []byte
}

// Save replaces the stored blob.
func (s *MemStore) Save(data []byte) error {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.data = cp
	s.mu.Unlock()
	return nil
}

// Load returns the stored blob.
func (s *MemStore) Load() ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		return nil, false, nil
	}
	return append([]byte(nil), s.data...), true, nil
}

// FileStore persists the blob to one file, written via a temp file and
// rename so a crash mid-save (kill -9 included) leaves either the old or
// the new state, never a torn one.
type FileStore struct{ Path string }

// Save writes data to a sibling temp file and renames it over Path.
func (s *FileStore) Save(data []byte) error {
	dir := filepath.Dir(s.Path)
	tmp, err := os.CreateTemp(dir, ".wsgt-*")
	if err != nil {
		return fmt.Errorf("train: checkpoint temp file: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("train: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("train: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, s.Path); err != nil {
		os.Remove(name)
		return fmt.Errorf("train: publishing checkpoint: %w", err)
	}
	return nil
}

// Load reads the checkpoint file; a missing file is ok=false, not an error.
func (s *FileStore) Load() ([]byte, bool, error) {
	data, err := os.ReadFile(s.Path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// ResilientReport summarizes a RunResilient call.
type ResilientReport struct {
	Stats []EpochStats
	// Recoveries counts restores after an injected (or real) epoch fault.
	Recoveries int
	// SaveFailures counts auto-checkpoints that failed (the previous
	// checkpoint stays in force; training continues).
	SaveFailures int
	// ResumedFrom is the epoch the run restarted at when the store held a
	// prior state (-1 when starting fresh).
	ResumedFrom int
}

// TryEpoch runs one epoch and then consults the train.step fault site: a
// drawn fault surfaces as an error AFTER the step mutated the model and
// optimizer, modeling a crash mid-update. Recovery therefore cannot just
// retry — it must restore the last checkpoint, which is exactly what
// RunResilient does (and what the resume test proves reproduces the
// unfaulted trajectory bit for bit).
func (t *FullGraph) TryEpoch() (float64, error) {
	loss := t.Epoch()
	if err := fault.CheckErr(fault.SiteTrainStep); err != nil {
		return 0, fmt.Errorf("train: epoch faulted: %w", err)
	}
	return loss, nil
}

// saveState serializes the full resumable state (params, Adam moments,
// dropout RNG, the next epoch index) into store.
func (t *FullGraph) saveState(store Store, nextEpoch int) error {
	var buf bytes.Buffer
	if err := t.Model.SaveTrainState(&buf, t.Opt, []uint64{uint64(nextEpoch)}); err != nil {
		return err
	}
	return store.Save(buf.Bytes())
}

// loadState restores state from store, returning the epoch to resume at
// and ok=false when the store is empty.
func (t *FullGraph) loadState(store Store) (int, bool, error) {
	data, ok, err := store.Load()
	if err != nil || !ok {
		return 0, ok, err
	}
	extra, err := t.Model.LoadTrainState(bytes.NewReader(data), t.Opt)
	if err != nil {
		return 0, false, err
	}
	if len(extra) != 1 {
		return 0, false, fmt.Errorf("train: train state carries %d extra words, want 1", len(extra))
	}
	return int(extra[0]), true, nil
}

// RunResilient is Run with auto-checkpointing and resume-on-fault: state
// is saved to store every `every` epochs (and before epoch 0), an epoch
// fault restores the latest checkpoint and replays from its epoch, and a
// store already holding state resumes from it (the kill-and-restart
// path). Because the checkpoint captures everything that influences the
// trajectory — parameters, Adam moments and step counts, the dropout RNG
// stream — the recovered run's per-epoch losses are bit-identical to an
// uninterrupted run's.
//
// Checkpoint I/O itself is a fault site: a failed auto-save is counted
// and tolerated (the previous checkpoint stays in force); a failed
// restore is retried against the retry budget.
func (t *FullGraph) RunResilient(epochs, every int, store Store) (*ResilientReport, error) {
	if every < 1 {
		every = 1
	}
	if store == nil {
		store = &MemStore{}
	}
	rep := &ResilientReport{ResumedFrom: -1}
	start := 0
	if ep, ok, err := t.loadState(store); err != nil {
		return nil, fmt.Errorf("train: resuming: %w", err)
	} else if ok {
		start, rep.ResumedFrom = ep, ep
	} else if err := t.saveState(store, 0); err != nil {
		return nil, fmt.Errorf("train: initial checkpoint: %w", err)
	}
	// The budget bounds pathological schedules (e.g. 100% fault rate)
	// instead of looping forever; normal rates stay far under it.
	budget := 3*epochs + 10
	for ep := start; ep < epochs; {
		began := time.Now()
		loss, err := t.TryEpoch()
		if err != nil {
			rep.Recoveries++
			if rep.Recoveries > budget {
				return rep, fmt.Errorf("train: %d recoveries exceed budget %d, giving up: %w", rep.Recoveries, budget, err)
			}
			rep2, ok, lerr := t.loadState(store)
			if lerr != nil || !ok {
				// Restore itself faulted (or the store vanished): burn a
				// recovery and try again rather than dying mid-repair.
				continue
			}
			// Replayed epochs' stats are truncated so the report reads as
			// one clean trajectory.
			ep = rep2
			if ep < len(rep.Stats) {
				rep.Stats = rep.Stats[:ep]
			}
			continue
		}
		st := EpochStats{
			Epoch:    ep,
			Loss:     loss,
			ValAcc:   t.Model.Accuracy(t.GC, t.DS.Features, t.DS.Labels, t.DS.ValMask),
			TestAcc:  t.Model.Accuracy(t.GC, t.DS.Features, t.DS.Labels, t.DS.TestMask),
			Duration: time.Since(began),
		}
		rep.Stats = append(rep.Stats, st)
		ep++
		if ep%every == 0 || ep == epochs {
			if err := t.saveState(store, ep); err != nil {
				rep.SaveFailures++ // previous checkpoint stays in force
			}
		}
	}
	return rep, nil
}
