package pattern

import (
	"testing"

	"wisegraph/internal/core"
	"wisegraph/internal/graph"
	"wisegraph/internal/graph/gen"
)

// paperGraph is the Figure 5(a) example.
func paperGraph() *graph.Graph {
	return &graph.Graph{
		NumVertices: 5,
		NumTypes:    2,
		Dst:         []int32{0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4},
		Src:         []int32{0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0},
		Type:        []int32{0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0},
	}
}

var attrs = []core.Attr{core.AttrSrcID, core.AttrDstID, core.AttrEdgeType}

func TestAnalyzeTaskDuplication(t *testing.T) {
	g := paperGraph()
	p := core.PartitionGraph(g, core.WholeGraph(), attrs)
	tp := AnalyzeTask(p, 0, attrs)
	if tp.Edges != 11 {
		t.Fatalf("edges = %d", tp.Edges)
	}
	// 5 unique srcs < 11 edges → duplicated; 2 types < 11 → duplicated
	if !tp.Dup[core.AttrSrcID] || !tp.Dup[core.AttrEdgeType] {
		t.Fatalf("duplication flags wrong: %+v", tp.Dup)
	}
	if tp.Uniq[core.AttrSrcID] != 5 || tp.Uniq[core.AttrEdgeType] != 2 {
		t.Fatalf("uniq counts wrong: %+v", tp.Uniq)
	}
	st := tp.Stats()
	if st.Edges != 11 || st.Uniq[core.AttrDstID] != 5 {
		t.Fatalf("stats conversion wrong: %+v", st)
	}
}

func TestAnalyzePlanPattern(t *testing.T) {
	g := paperGraph()
	p := core.PartitionGraph(g, core.VertexCentric(), attrs)
	pp := Analyze(p, attrs)
	if pp.NumTasks != 5 || pp.TotalEdges != 11 {
		t.Fatalf("plan pattern sizes: %+v", pp)
	}
	// in-degrees 2,3,3,2,1 → median 2
	if pp.MedianEdges != 2 {
		t.Fatalf("median edges = %d", pp.MedianEdges)
	}
	if pp.MinEdges != 1 || pp.MaxEdges != 3 {
		t.Fatalf("min/max edges %d/%d", pp.MinEdges, pp.MaxEdges)
	}
	// vertex-centric: one dst shared by every edge of a task — dst IS
	// duplicated wherever the degree exceeds one (the shared-output
	// pattern), and a single-edge task has no duplication at all.
	if !pp.Duplicated(core.AttrDstID) {
		t.Fatal("dst is duplicated across a vertex-centric task's edges")
	}
	ec := core.PartitionGraph(g, core.EdgeCentric(), attrs)
	ppEC := Analyze(ec, attrs)
	for _, a := range attrs {
		if ppEC.Duplicated(a) {
			t.Fatalf("edge-centric tasks hold one edge; %v cannot be duplicated", a)
		}
	}
	rs := pp.RegularStats()
	if rs.Edges != 2 {
		t.Fatalf("regular stats edges = %d", rs.Edges)
	}
}

func TestVolumeChange(t *testing.T) {
	res := gen.Generate(gen.Config{NumVertices: 300, NumEdges: 3000, Kind: gen.PowerLaw, Skew: 1.0, Seed: 2})
	p := core.PartitionGraph(res.Graph, core.GraphPlan{
		Name: "dst8", Restrictions: []core.Restriction{{Attr: core.AttrDstID, Kind: core.Exact, Limit: 8}},
	}, attrs)
	pp := Analyze(p, attrs)
	// aggregation reduces volume: uniq(dst) < uniq(src) per task on a
	// dst-batched partition of a skewed graph
	vc := pp.VolumeChange(core.AttrSrcID, core.AttrDstID)
	if vc <= 0 || vc >= 1 {
		t.Fatalf("volume change = %v, want (0,1): aggregation shrinks data", vc)
	}
}

func TestAnalyzeEmptyPartition(t *testing.T) {
	g := &graph.Graph{NumVertices: 3, NumTypes: 1}
	p := core.PartitionGraph(g, core.VertexCentric(), attrs)
	pp := Analyze(p, attrs)
	if pp.NumTasks != 0 || pp.TotalEdges != 0 {
		t.Fatalf("empty graph pattern: %+v", pp)
	}
}
