// Package pattern extracts gTask-level data patterns (paper §5.1) from a
// graph partition: duplicated data (uniq(attr) < #edges), batched data
// (the unique-value counts that size micro-kernel batches), and changing
// data volume (the input/output uniqueness ratio that drives operation
// placement in multi-device training).
package pattern

import (
	"sort"

	"wisegraph/internal/core"
	"wisegraph/internal/dfg"
	"wisegraph/internal/parallel"
)

// TaskPattern summarizes one gTask.
type TaskPattern struct {
	Edges int
	Uniq  map[core.Attr]int
	// Dup marks attributes with duplicated values inside the task.
	Dup map[core.Attr]bool
}

// Stats converts the pattern into the cost model's TaskStats.
func (t TaskPattern) Stats() dfg.TaskStats {
	return dfg.TaskStats{Edges: t.Edges, Uniq: t.Uniq}
}

// AnalyzeTask computes the pattern of task ti over the given attributes
// (which must have been collected at partition time).
func AnalyzeTask(p *core.Partition, ti int, attrs []core.Attr) TaskPattern {
	t := TaskPattern{
		Edges: p.TaskLen(ti),
		Uniq:  make(map[core.Attr]int, len(attrs)),
		Dup:   make(map[core.Attr]bool, len(attrs)),
	}
	for _, a := range attrs {
		u := int(p.TaskUniq(ti, a))
		t.Uniq[a] = u
		t.Dup[a] = u < t.Edges
	}
	return t
}

// PlanPattern aggregates patterns across a whole partition: the medians
// describe the *regular* gTask the operation partition is tuned for
// (outliers are handled separately by the joint optimizer).
type PlanPattern struct {
	NumTasks    int
	TotalEdges  int
	MedianEdges int
	MaxEdges    int
	MinEdges    int
	// MedianUniq per attribute, over tasks.
	MedianUniq map[core.Attr]int
	// DupFraction is the fraction of tasks where the attribute is
	// duplicated; ≥ 0.5 marks the plan-level duplicated-data pattern.
	DupFraction map[core.Attr]float64
}

// Analyze computes the plan-level pattern over the given attributes.
func Analyze(p *core.Partition, attrs []core.Attr) PlanPattern {
	n := p.NumTasks()
	pp := PlanPattern{
		NumTasks:    n,
		MedianUniq:  make(map[core.Attr]int, len(attrs)),
		DupFraction: make(map[core.Attr]float64, len(attrs)),
	}
	if n == 0 {
		return pp
	}
	lens := make([]int, n)
	parallel.ForRange(n, 1<<14, func(lo, hi int) {
		for ti := lo; ti < hi; ti++ {
			lens[ti] = p.TaskLen(ti)
		}
	})
	for _, l := range lens {
		pp.TotalEdges += l
	}
	pp.MedianEdges = median(lens)
	pp.MinEdges, pp.MaxEdges = lens[0], lens[0]
	for _, l := range lens {
		if l < pp.MinEdges {
			pp.MinEdges = l
		}
		if l > pp.MaxEdges {
			pp.MaxEdges = l
		}
	}
	// Attributes are independent; compute each one's median/dup-fraction
	// on its own worker, then fill the maps sequentially.
	medians := make([]int, len(attrs))
	dupFracs := make([]float64, len(attrs))
	parallel.For(len(attrs), 1, func(i int) {
		a := attrs[i]
		us := make([]int, n)
		dup := 0
		for ti := 0; ti < n; ti++ {
			u := int(p.TaskUniq(ti, a))
			us[ti] = u
			if u < lens[ti] {
				dup++
			}
		}
		medians[i] = median(us)
		dupFracs[i] = float64(dup) / float64(n)
	})
	for i, a := range attrs {
		pp.MedianUniq[a] = medians[i]
		pp.DupFraction[a] = dupFracs[i]
	}
	return pp
}

// Duplicated reports the plan-level duplicated-data pattern for attr:
// true when a majority of tasks have duplicates.
func (pp PlanPattern) Duplicated(a core.Attr) bool { return pp.DupFraction[a] >= 0.5 }

// RegularStats returns the TaskStats of the archetypal regular gTask —
// median edges and median unique counts — used to tune the operation
// partition once per plan instead of per task.
func (pp PlanPattern) RegularStats() dfg.TaskStats {
	u := make(map[core.Attr]int, len(pp.MedianUniq))
	for a, v := range pp.MedianUniq {
		u[a] = v
	}
	return dfg.TaskStats{Edges: pp.MedianEdges, Uniq: u}
}

// VolumeChange returns uniq(out)/uniq(in) for the plan's regular task:
// < 1 means computation reduces data volume (communicate after compute);
// > 1 means it expands (communicate before compute). Paper §5.1
// "changing data volume".
func (pp PlanPattern) VolumeChange(in, out core.Attr) float64 {
	i := pp.MedianUniq[in]
	o := pp.MedianUniq[out]
	if i == 0 {
		return 1
	}
	return float64(o) / float64(i)
}

// median returns the median of xs (xs is not modified).
func median(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]int(nil), xs...)
	sort.Ints(cp)
	return cp[len(cp)/2]
}
