package core

import (
	"testing"
	"testing/quick"

	"wisegraph/internal/graph"
	"wisegraph/internal/graph/gen"
	"wisegraph/internal/tensor"
)

// paperGraph reproduces the example of Figure 5(a): 5 vertices, 11 edges,
// types a/b, with the exact edge-attribute table printed in the figure:
//
//	Edge ID:   0 1 2 3 4 5 6 7 8 9 10
//	Dst ID:    0 0 1 1 1 2 2 2 3 3 4
//	Src ID:    0 1 0 1 2 2 3 4 3 4 0
//	Edge Type: a a a a b a b b b b a
func paperGraph() *graph.Graph {
	return &graph.Graph{
		NumVertices: 5,
		NumTypes:    2,
		Dst:         []int32{0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4},
		Src:         []int32{0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0},
		Type:        []int32{0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0},
	}
}

func allAttrs() []Attr {
	return []Attr{AttrEdgeID, AttrSrcID, AttrDstID, AttrEdgeType, AttrSrcDegree, AttrDstDegree}
}

func TestAttrReaderValues(t *testing.T) {
	g := paperGraph()
	r := NewAttrReader(g)
	if r.Value(AttrSrcID, 4) != 2 || r.Value(AttrDstID, 4) != 1 || r.Value(AttrEdgeType, 4) != 1 {
		t.Fatalf("edge 4 attributes wrong")
	}
	if r.Value(AttrEdgeID, 7) != 7 {
		t.Fatalf("edge-id attribute wrong")
	}
	// vertex 0 out-degree: edges 0, 2, 10 → 3
	if r.Value(AttrSrcDegree, 0) != 3 {
		t.Fatalf("src-degree = %d, want 3", r.Value(AttrSrcDegree, 0))
	}
	// vertex 1 in-degree: edges 2,3,4 → 3
	if r.Value(AttrDstDegree, 2) != 3 {
		t.Fatalf("dst-degree = %d, want 3", r.Value(AttrDstDegree, 2))
	}
}

func TestClassify(t *testing.T) {
	idx := []Attr{AttrSrcID, AttrDstID, AttrEdgeType}
	if Classify(AttrSrcID, idx) != ClassIndexing {
		t.Fatal("src-id should be indexing")
	}
	if Classify(AttrDstDegree, idx) != ClassInherent {
		t.Fatal("dst-degree should be inherent")
	}
	if Classify(AttrEdgeType, []Attr{AttrSrcID}) != ClassUnused {
		t.Fatal("edge-type unused when model does not index it")
	}
}

func TestVertexCentricPartition(t *testing.T) {
	g := paperGraph()
	p := PartitionGraph(g, VertexCentric(), allAttrs())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// One gTask per destination with in-edges: vertices 0..4 → 5 tasks.
	if p.NumTasks() != 5 {
		t.Fatalf("vertex-centric tasks = %d, want 5", p.NumTasks())
	}
	for ti := 0; ti < p.NumTasks(); ti++ {
		if p.TaskUniq(ti, AttrDstID) != 1 {
			t.Fatalf("task %d has %d unique dsts", ti, p.TaskUniq(ti, AttrDstID))
		}
	}
	// in-degrees are 2,3,3,2,1
	lens := []int{p.TaskLen(0), p.TaskLen(1), p.TaskLen(2), p.TaskLen(3), p.TaskLen(4)}
	want := []int{2, 3, 3, 2, 1}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("task sizes %v, want %v", lens, want)
		}
	}
}

func TestEdgeCentricPartition(t *testing.T) {
	g := paperGraph()
	p := PartitionGraph(g, EdgeCentric(), nil)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumTasks() != g.NumEdges() {
		t.Fatalf("edge-centric tasks = %d, want %d", p.NumTasks(), g.NumEdges())
	}
}

func TestWholeGraphPartition(t *testing.T) {
	g := paperGraph()
	p := PartitionGraph(g, WholeGraph(), allAttrs())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumTasks() != 1 || p.TaskLen(0) != 11 {
		t.Fatalf("whole-graph should be one task of 11 edges")
	}
	if p.TaskUniq(0, AttrSrcID) != 5 || p.TaskUniq(0, AttrEdgeType) != 2 {
		t.Fatalf("whole-graph uniq stats wrong: src=%d type=%d",
			p.TaskUniq(0, AttrSrcID), p.TaskUniq(0, AttrEdgeType))
	}
}

func TestDstTypePartition(t *testing.T) {
	// Figure 7(d): uniq(dst-id)=1 & uniq(edge-type)=1.
	g := paperGraph()
	plan := GraphPlan{Name: "dst1-type1", Restrictions: []Restriction{
		{Attr: AttrDstID, Kind: Exact, Limit: 1},
		{Attr: AttrEdgeType, Kind: Exact, Limit: 1},
	}}
	p := PartitionGraph(g, plan, allAttrs())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// dst 0: type a only → 1 task; dst 1: a,a then b → 2; dst 2: a then
	// b,b → 2; dst 3: b,b → 1; dst 4: a → 1. Total 7.
	if p.NumTasks() != 7 {
		t.Fatalf("tasks = %d, want 7", p.NumTasks())
	}
	for ti := 0; ti < p.NumTasks(); ti++ {
		if p.TaskUniq(ti, AttrDstID) != 1 || p.TaskUniq(ti, AttrEdgeType) != 1 {
			t.Fatalf("task %d violates restrictions", ti)
		}
	}
}

func TestDstBatch2Partition(t *testing.T) {
	// Figure 7(c): uniq(dst-id)=2.
	g := paperGraph()
	plan := GraphPlan{Name: "dst2", Restrictions: []Restriction{{Attr: AttrDstID, Kind: Exact, Limit: 2}}}
	p := PartitionGraph(g, plan, allAttrs())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// dsts {0,1} (5 edges), {2,3} (5 edges), {4} (1 edge) → 3 tasks.
	if p.NumTasks() != 3 {
		t.Fatalf("tasks = %d, want 3", p.NumTasks())
	}
	for ti := 0; ti < p.NumTasks(); ti++ {
		if p.TaskUniq(ti, AttrDstID) > 2 {
			t.Fatalf("task %d has %d unique dsts", ti, p.TaskUniq(ti, AttrDstID))
		}
	}
}

func TestSrcBatchTypePartition(t *testing.T) {
	// The RGCN plan: uniq(src-id)=K & uniq(edge-type)=1 groups same-type
	// edges batched by source.
	g := paperGraph()
	plan := GraphPlan{Name: "src2-type1", Restrictions: []Restriction{
		{Attr: AttrSrcID, Kind: Exact, Limit: 2},
		{Attr: AttrEdgeType, Kind: Exact, Limit: 1},
	}}
	p := PartitionGraph(g, plan, allAttrs())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < p.NumTasks(); ti++ {
		if p.TaskUniq(ti, AttrEdgeType) != 1 {
			t.Fatalf("task %d mixes types", ti)
		}
		if p.TaskUniq(ti, AttrSrcID) > 2 {
			t.Fatalf("task %d has %d unique srcs", ti, p.TaskUniq(ti, AttrSrcID))
		}
	}
}

func TestDegreeMinPadding(t *testing.T) {
	// Figure 7(h): uniq(dst-id)=3 & uniq(dst-degree)=min. Sorting by
	// degree first groups same-degree destinations, so most tasks see a
	// single unique degree.
	g := paperGraph()
	plan := GraphPlan{Name: "dst3-degmin", Restrictions: []Restriction{
		{Attr: AttrDstID, Kind: Exact, Limit: 3},
		{Attr: AttrDstDegree, Kind: Min},
	}}
	p := PartitionGraph(g, plan, allAttrs())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// degrees: v0=2 v1=3 v2=3 v3=2 v4=1 → sorted by degree: v4(1),
	// v0,v3(2), v1,v2(3). Tasks of ≤3 dsts: {4,0,3} then {1,2}.
	if p.NumTasks() != 2 {
		t.Fatalf("tasks = %d, want 2", p.NumTasks())
	}
	if p.TaskUniq(1, AttrDstDegree) != 1 {
		t.Fatalf("second task should have one unique degree, got %d", p.TaskUniq(1, AttrDstDegree))
	}
}

func TestTaskOfEdgeCoversAllEdges(t *testing.T) {
	g := paperGraph()
	p := PartitionGraph(g, VertexCentric(), nil)
	tid := p.TaskOfEdge()
	if len(tid) != g.NumEdges() {
		t.Fatalf("TaskOfEdge length %d", len(tid))
	}
	for e, id := range tid {
		if id < 0 || int(id) >= p.NumTasks() {
			t.Fatalf("edge %d has invalid task %d", e, id)
		}
	}
	// edges 0 and 1 share dst 0 → same task
	if tid[0] != tid[1] {
		t.Fatal("edges with same dst must share vertex-centric task")
	}
}

func TestEnumeratePlansCoverage(t *testing.T) {
	plans := EnumeratePlans([]Attr{AttrSrcID, AttrDstID, AttrEdgeType}, DefaultPlanSpace(true))
	names := map[string]bool{}
	for _, p := range plans {
		names[p.Name] = true
	}
	for _, want := range []string{"vertex-centric", "edge-centric", "2d-32", "dst1-type1", "src-32-type-1", "dst-32-degmin", "deg1"} {
		if !names[want] {
			t.Fatalf("plan %q missing from enumeration: %v", want, names)
		}
	}
	// Without types, type plans must disappear.
	plans = EnumeratePlans([]Attr{AttrSrcID, AttrDstID}, DefaultPlanSpace(false))
	for _, p := range plans {
		if _, ok := p.Restricted(AttrEdgeType); ok {
			t.Fatalf("type-restricted plan %v in untyped space", p)
		}
	}
}

func TestRestrictedAndHasMin(t *testing.T) {
	plan := GraphPlan{Restrictions: []Restriction{
		{Attr: AttrDstID, Kind: Exact, Limit: 3},
		{Attr: AttrDstDegree, Kind: Min},
	}}
	if k, ok := plan.Restricted(AttrDstID); !ok || k != 3 {
		t.Fatal("Restricted(dst) wrong")
	}
	if _, ok := plan.Restricted(AttrSrcID); ok {
		t.Fatal("src should be unrestricted")
	}
	if !plan.HasMin(AttrDstDegree) || plan.HasMin(AttrDstID) {
		t.Fatal("HasMin wrong")
	}
}

func TestPlanStrings(t *testing.T) {
	s := VertexCentric().String()
	if s != "vertex-centric{uniq(dst-id)=1}" {
		t.Fatalf("plan string = %q", s)
	}
}

// Property: for random graphs and random plans from the enumeration,
// partitions always validate and respect their Exact restrictions.
func TestPropPartitionInvariants(t *testing.T) {
	plans := EnumeratePlans([]Attr{AttrSrcID, AttrDstID, AttrEdgeType}, DefaultPlanSpace(true))
	f := func(seed uint64, planIdx uint8, vSmall, eSmall uint8) bool {
		v := int(vSmall%40) + 2
		e := int(eSmall%120) + 1
		res := gen.Generate(gen.Config{NumVertices: v, NumEdges: e, Kind: gen.PowerLaw, Skew: 0.9, NumTypes: 3, Seed: seed})
		plan := plans[int(planIdx)%len(plans)]
		p := PartitionGraph(res.Graph, plan, allAttrs())
		if err := p.Validate(); err != nil {
			t.Logf("plan %v: %v", plan, err)
			return false
		}
		for ti := 0; ti < p.NumTasks(); ti++ {
			for _, r := range plan.Restrictions {
				if r.Kind != Exact {
					continue
				}
				if int(p.TaskUniq(ti, r.Attr)) > r.Limit {
					t.Logf("plan %v task %d violates %v", plan, ti, r)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the greedy partitioner is O(E)-ish in task growth — the number
// of tasks never exceeds the edge count and every edge appears exactly once.
func TestPropPartitionCoversEdges(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		v := rng.Intn(30) + 2
		e := rng.Intn(100) + 1
		res := gen.Generate(gen.Config{NumVertices: v, NumEdges: e, Kind: gen.Uniform, Seed: seed})
		p := PartitionGraph(res.Graph, VertexCentric(), nil)
		if p.NumTasks() > e {
			return false
		}
		total := 0
		for ti := 0; ti < p.NumTasks(); ti++ {
			total += p.TaskLen(ti)
		}
		return total == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
