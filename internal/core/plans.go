package core

import "fmt"

// PlanSpace controls plan enumeration.
type PlanSpace struct {
	// BatchSizes are the K values tried for Exact restrictions with K > 1
	// (paper Figure 18 sweeps these).
	BatchSizes []int
	// HasTypes enables edge-type restricted plans (RGCN-style models).
	HasTypes bool
	// UseDegree enables inherent-attribute (degree) plans.
	UseDegree bool
}

// DefaultPlanSpace returns the space used by the end-to-end search.
func DefaultPlanSpace(hasTypes bool) PlanSpace {
	return PlanSpace{BatchSizes: []int{32, 128}, HasTypes: hasTypes, UseDegree: true}
}

// EnumeratePlans generates candidate graph partition plans for a model
// whose indexing operations consume indexAttrs. The space covers the
// existing partitions (vertex-centric, edge-centric, 2-D) as special cases
// plus the new plans of paper Figure 7: type-restricted, degree-restricted
// and min-restricted padding plans.
func EnumeratePlans(indexAttrs []Attr, space PlanSpace) []GraphPlan {
	uses := func(a Attr) bool {
		for _, x := range indexAttrs {
			if x == a {
				return true
			}
		}
		return false
	}
	var plans []GraphPlan
	add := func(name string, rs ...Restriction) {
		plans = append(plans, GraphPlan{Name: name, Restrictions: rs})
	}

	// (b) vertex-centric: uniq(dst-id)=1.
	if uses(AttrDstID) {
		add("vertex-centric", Restriction{Attr: AttrDstID, Kind: Exact, Limit: 1})
	}
	// (e) edge-centric: uniq(edge-id)=1.
	add("edge-centric", Restriction{Attr: AttrEdgeID, Kind: Exact, Limit: 1})

	for _, k := range space.BatchSizes {
		// edge-batched: uniq(edge-id)=K, balanced fixed-size tasks.
		add(fmt.Sprintf("edge-batch-%d", k), Restriction{Attr: AttrEdgeID, Kind: Exact, Limit: k})
		if uses(AttrDstID) {
			// (c) dst-batched: uniq(dst-id)=K.
			add(fmt.Sprintf("dst-batch-%d", k), Restriction{Attr: AttrDstID, Kind: Exact, Limit: k})
			// vertex-centric with bounded edges: uniq(dst-id)=1 & uniq(edge-id)=K.
			add(fmt.Sprintf("dst1-edge-%d", k),
				Restriction{Attr: AttrDstID, Kind: Exact, Limit: 1},
				Restriction{Attr: AttrEdgeID, Kind: Exact, Limit: k})
		}
		if uses(AttrSrcID) && uses(AttrDstID) {
			// (f) 2-D partition: uniq(dst-id)=K & uniq(src-id)=K.
			add(fmt.Sprintf("2d-%d", k),
				Restriction{Attr: AttrDstID, Kind: Exact, Limit: k},
				Restriction{Attr: AttrSrcID, Kind: Exact, Limit: k})
		}
		if space.HasTypes && uses(AttrEdgeType) && uses(AttrSrcID) {
			// src-batched single-type (the RGCN winner in Figure 18a):
			// uniq(src-id)=K & uniq(edge-type)=1.
			add(fmt.Sprintf("src-%d-type-1", k),
				Restriction{Attr: AttrSrcID, Kind: Exact, Limit: k},
				Restriction{Attr: AttrEdgeType, Kind: Exact, Limit: 1})
		}
		if space.UseDegree && uses(AttrDstID) {
			// (h) degree-padded: uniq(dst-id)=K & uniq(dst-degree)=min
			// (the SAGE-LSTM winner in Figure 18b).
			add(fmt.Sprintf("dst-%d-degmin", k),
				Restriction{Attr: AttrDstID, Kind: Exact, Limit: k},
				Restriction{Attr: AttrDstDegree, Kind: Min})
		}
	}
	if space.HasTypes && uses(AttrEdgeType) {
		if uses(AttrDstID) {
			// (d) vertex+type: uniq(dst-id)=1 & uniq(edge-type)=1.
			add("dst1-type1",
				Restriction{Attr: AttrDstID, Kind: Exact, Limit: 1},
				Restriction{Attr: AttrEdgeType, Kind: Exact, Limit: 1})
		}
		// type-only: uniq(edge-type)=1 (tensor-centric per relation).
		add("type1", Restriction{Attr: AttrEdgeType, Kind: Exact, Limit: 1})
	}
	if space.UseDegree && uses(AttrDstID) {
		// (g) same-degree grouping: uniq(dst-degree)=1.
		add("deg1", Restriction{Attr: AttrDstDegree, Kind: Exact, Limit: 1})
	}
	return plans
}

// Restricted reports whether plan has an Exact restriction on a, returning
// its limit.
func (p GraphPlan) Restricted(a Attr) (limit int, ok bool) {
	for _, r := range p.Restrictions {
		if r.Attr == a && r.Kind == Exact {
			return r.Limit, true
		}
	}
	return 0, false
}

// HasMin reports whether plan has a Min restriction on a.
func (p GraphPlan) HasMin(a Attr) bool {
	for _, r := range p.Restrictions {
		if r.Attr == a && r.Kind == Min {
			return true
		}
	}
	return false
}
