// Package core implements WiseGraph's central abstraction, the gTask
// (paper §3–§4): a subset of edges produced by applying *restrictions* on
// edge attributes from the graph partition table, later paired with an
// operation partition plan. The package provides
//
//   - the graph partition table: edge attributes with their location
//     (src / dst / edge) and class (indexing / inherent / unused),
//   - restrictions (uniq(attr)=k, uniq(attr)=min, unrestricted),
//   - the greedy O(E log E) partitioner that sorts edges by the restricted
//     attributes and scans them into gTasks,
//   - enumeration of candidate graph partition plans for a model's
//     indexing attributes, covering vertex-centric, edge-centric, 2-D and
//     the new type/degree/min-restricted plans of Figure 7.
package core

import (
	"fmt"

	"wisegraph/internal/graph"
)

// Attr identifies a row of the graph partition table.
type Attr int

const (
	// AttrEdgeID is the edge's own id (unique per edge).
	AttrEdgeID Attr = iota
	// AttrSrcID is the source vertex id.
	AttrSrcID
	// AttrDstID is the destination vertex id.
	AttrDstID
	// AttrEdgeType is the relation type (RGCN's W index).
	AttrEdgeType
	// AttrSrcDegree is the out-degree of the source vertex (inherent).
	AttrSrcDegree
	// AttrDstDegree is the in-degree of the destination vertex (inherent).
	AttrDstDegree
	// NumAttrs is the number of table rows.
	NumAttrs
)

// String names the attribute as in the paper's figures.
func (a Attr) String() string {
	switch a {
	case AttrEdgeID:
		return "edge-id"
	case AttrSrcID:
		return "src-id"
	case AttrDstID:
		return "dst-id"
	case AttrEdgeType:
		return "edge-type"
	case AttrSrcDegree:
		return "src-degree"
	case AttrDstDegree:
		return "dst-degree"
	default:
		return fmt.Sprintf("attr(%d)", int(a))
	}
}

// Location is the graph-partition-table column an attribute lives in.
type Location int

const (
	// LocEdge marks attributes stored on the edge itself.
	LocEdge Location = iota
	// LocSrc marks attributes of the source vertex.
	LocSrc
	// LocDst marks attributes of the destination vertex.
	LocDst
)

// Location returns where the attribute lives.
func (a Attr) Location() Location {
	switch a {
	case AttrSrcID, AttrSrcDegree:
		return LocSrc
	case AttrDstID, AttrDstDegree:
		return LocDst
	default:
		return LocEdge
	}
}

// Class categorizes table rows (paper Figure 6).
type Class int

const (
	// ClassIndexing attributes are used by the model's indexing
	// operations; restrictions on them shape operation efficiency.
	ClassIndexing Class = iota
	// ClassInherent attributes (degrees) are not indexed by the model but
	// still matter for performance.
	ClassInherent
	// ClassUnused attributes are ignored by graph partition.
	ClassUnused
)

// Classify returns the class of attribute a for a model whose indexing
// operations consume indexAttrs.
func Classify(a Attr, indexAttrs []Attr) Class {
	for _, x := range indexAttrs {
		if x == a {
			return ClassIndexing
		}
	}
	if a == AttrSrcDegree || a == AttrDstDegree || a == AttrEdgeID {
		return ClassInherent
	}
	return ClassUnused
}

// AttrReader resolves attribute values for edges of a graph. Degree
// attributes are cached from the graph on construction.
type AttrReader struct {
	g      *graph.Graph
	inDeg  []int32
	outDeg []int32
}

// NewAttrReader builds a reader over g.
func NewAttrReader(g *graph.Graph) *AttrReader {
	return &AttrReader{g: g, inDeg: g.InDegrees(), outDeg: g.OutDegrees()}
}

// Value returns attribute a of edge e.
func (r *AttrReader) Value(a Attr, e int) int32 {
	switch a {
	case AttrEdgeID:
		return int32(e)
	case AttrSrcID:
		return r.g.Src[e]
	case AttrDstID:
		return r.g.Dst[e]
	case AttrEdgeType:
		return r.g.EdgeType(e)
	case AttrSrcDegree:
		return r.outDeg[r.g.Src[e]]
	case AttrDstDegree:
		return r.inDeg[r.g.Dst[e]]
	default:
		panic(fmt.Sprintf("core: unknown attribute %d", int(a)))
	}
}

// Cardinality returns the number of distinct values attribute a can take
// on this graph (used by the cost model to bound uniqueness).
func (r *AttrReader) Cardinality(a Attr) int {
	switch a {
	case AttrEdgeID:
		return r.g.NumEdges()
	case AttrSrcID, AttrDstID:
		return r.g.NumVertices
	case AttrEdgeType:
		return r.g.NumTypes
	default:
		return r.g.NumVertices // degree values are bounded by V
	}
}

// ParseAttr resolves an attribute name (as produced by Attr.String).
func ParseAttr(name string) (Attr, error) {
	for a := Attr(0); a < NumAttrs; a++ {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown attribute %q", name)
}
