package core

import (
	"testing"

	"wisegraph/internal/graph"
	"wisegraph/internal/graph/gen"
	"wisegraph/internal/parallel"
)

// parityWorkerCounts covers the sequential path (1), the smallest
// parallel split (2), an odd split (3), and oversubscription (8).
var parityWorkerCounts = []int{1, 2, 3, 8}

func parityGraphs(tb testing.TB) map[string]*graph.Graph {
	gs := map[string]*graph.Graph{
		"empty": {NumVertices: 4, NumTypes: 1},
		"one-edge": {
			NumVertices: 3, NumTypes: 1,
			Src: []int32{2}, Dst: []int32{0},
		},
		"paper": paperGraph(),
		// Large enough to cross the segmented-scan and parallel-radix
		// thresholds (segMinEdges = 1<<14) with multiple segments.
		"power-law": gen.Generate(gen.Config{
			NumVertices: 4000, NumEdges: 40000, Kind: gen.PowerLaw, Skew: 0.9, Seed: 7,
		}).Graph,
		"rmat-typed": gen.Generate(gen.Config{
			NumVertices: 3000, NumEdges: 36000, Kind: gen.RMAT, Skew: 0.7, NumTypes: 8, Seed: 11,
		}).Graph,
		"uniform-small": gen.Generate(gen.Config{
			NumVertices: 200, NumEdges: 1500, Kind: gen.Uniform, Seed: 3,
		}).Graph,
	}
	for name, g := range gs {
		if err := g.Validate(); err != nil {
			tb.Fatalf("%s: %v", name, err)
		}
	}
	return gs
}

func parityPlans(g *graph.Graph) []GraphPlan {
	plans := []GraphPlan{WholeGraph(), VertexCentric(), EdgeCentric()}
	idx := []Attr{AttrSrcID, AttrDstID, AttrEdgeType}
	plans = append(plans, EnumeratePlans(idx, DefaultPlanSpace(g.NumTypes > 1))...)
	return plans
}

func comparePartitions(t *testing.T, label string, want, got *Partition) {
	t.Helper()
	if len(got.Order) != len(want.Order) {
		t.Fatalf("%s: order length %d, want %d", label, len(got.Order), len(want.Order))
	}
	for i := range want.Order {
		if got.Order[i] != want.Order[i] {
			t.Fatalf("%s: order[%d] = %d, want %d", label, i, got.Order[i], want.Order[i])
		}
	}
	if len(got.TaskOffsets) != len(want.TaskOffsets) {
		t.Fatalf("%s: %d offsets, want %d\n got  %v\n want %v",
			label, len(got.TaskOffsets), len(want.TaskOffsets), head(got.TaskOffsets), head(want.TaskOffsets))
	}
	for i := range want.TaskOffsets {
		if got.TaskOffsets[i] != want.TaskOffsets[i] {
			t.Fatalf("%s: offsets[%d] = %d, want %d", label, i, got.TaskOffsets[i], want.TaskOffsets[i])
		}
	}
	for a := Attr(0); a < NumAttrs; a++ {
		w, gu := want.Uniq[a], got.Uniq[a]
		if (w == nil) != (gu == nil) {
			t.Fatalf("%s: uniq(%s) nil mismatch (want nil=%v, got nil=%v)", label, a, w == nil, gu == nil)
		}
		if len(w) != len(gu) {
			t.Fatalf("%s: uniq(%s) has %d entries, want %d", label, a, len(gu), len(w))
		}
		for i := range w {
			if gu[i] != w[i] {
				t.Fatalf("%s: uniq(%s)[%d] = %d, want %d", label, a, i, gu[i], w[i])
			}
		}
	}
}

func head(xs []int32) []int32 {
	if len(xs) > 12 {
		return xs[:12]
	}
	return xs
}

// TestPartitionParityWithReference checks that the optimized partitioner
// (radix sort + stamped trackers + segmented scan) is byte-identical to
// the retained sequential reference for every plan in the default plan
// space, across graph shapes and worker counts.
func TestPartitionParityWithReference(t *testing.T) {
	defer parallel.SetMaxWorkers(parallel.MaxWorkers())
	stat := []Attr{AttrSrcID, AttrDstID, AttrEdgeType, AttrDstDegree}
	for name, g := range parityGraphs(t) {
		for _, plan := range parityPlans(g) {
			want := PartitionGraphReference(g, plan, stat)
			for _, w := range parityWorkerCounts {
				parallel.SetMaxWorkers(w)
				got := PartitionGraph(g, plan, stat)
				label := name + "/" + plan.String()
				comparePartitions(t, label, want, got)
				if err := got.Validate(); err != nil {
					t.Fatalf("%s (workers=%d): %v", label, w, err)
				}
			}
		}
	}
}

// TestPartitionerReuseIsDeterministic partitions through one Partitioner
// repeatedly (alternating plans and graphs) so retained stamp buffers and
// generation counters carry across calls, and checks every call still
// matches the reference.
func TestPartitionerReuseIsDeterministic(t *testing.T) {
	defer parallel.SetMaxWorkers(parallel.MaxWorkers())
	parallel.SetMaxWorkers(4)
	stat := []Attr{AttrSrcID, AttrDstID, AttrEdgeType, AttrDstDegree}
	gs := parityGraphs(t)
	pt := NewPartitioner()
	for round := 0; round < 3; round++ {
		for name, g := range gs {
			for _, plan := range parityPlans(g) {
				want := PartitionGraphReference(g, plan, stat)
				got := pt.Partition(g, plan, stat)
				comparePartitions(t, name+"/"+plan.String(), want, got)
			}
		}
	}
	pt.Release()
	// Usable after Release: buffers are re-acquired on demand.
	g := gs["paper"]
	comparePartitions(t, "post-release",
		PartitionGraphReference(g, VertexCentric(), stat),
		pt.Partition(g, VertexCentric(), stat))
}
