package core

import (
	"testing"

	"wisegraph/internal/graph"
	"wisegraph/internal/graph/gen"
)

// benchGraph approximates the AR dataset's shape at reduced scale: a
// typed power-law graph, the regime the partitioner runs in during the
// joint search and the sampled-training pipeline.
func benchGraph() *graph.Graph {
	return gen.Generate(gen.Config{
		NumVertices: 40000, NumEdges: 400000,
		Kind: gen.PowerLaw, Skew: 0.9, NumTypes: 8, Seed: 42,
	}).Graph
}

// benchPlans covers the plan shapes the search actually sweeps: single
// tight restriction, multi-attribute restrictions, counter-only batching,
// and the unrestricted whole-graph degenerate.
func benchPlans() []GraphPlan {
	return []GraphPlan{
		VertexCentric(),
		{Name: "src32-type1", Restrictions: []Restriction{
			{Attr: AttrSrcID, Kind: Exact, Limit: 32},
			{Attr: AttrEdgeType, Kind: Exact, Limit: 1},
		}},
		{Name: "dst32-degmin", Restrictions: []Restriction{
			{Attr: AttrDstID, Kind: Exact, Limit: 32},
			{Attr: AttrDstDegree, Kind: Min},
		}},
		{Name: "edge-batch128", Restrictions: []Restriction{
			{Attr: AttrEdgeID, Kind: Exact, Limit: 128},
		}},
		WholeGraph(),
	}
}

var benchStatAttrs = []Attr{AttrSrcID, AttrDstID, AttrEdgeType, AttrDstDegree}

// BenchmarkPartitionGraph compares the retained sequential reference
// (comparator sort + hash-map trackers) against the optimized engine
// (radix sort + stamped trackers + segmented scan). Run with
// -cpu 1,N to see the worker scaling of the optimized path; the
// reference is single-threaded by construction.
func BenchmarkPartitionGraph(b *testing.B) {
	g := benchGraph()
	g.InDegrees() // warm degree caches outside the timed region
	g.OutDegrees()
	for _, plan := range benchPlans() {
		b.Run("reference/"+plan.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				PartitionGraphReference(g, plan, benchStatAttrs)
			}
		})
		b.Run("optimized/"+plan.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				PartitionGraph(g, plan, benchStatAttrs)
			}
		})
	}
}
