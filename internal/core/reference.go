package core

import (
	"sort"

	"wisegraph/internal/graph"
)

// PartitionGraphReference is the retained sequential implementation of
// PartitionGraph: comparator-based stable sort over the key columns and
// hash-map unique trackers. It is the semantic specification the
// optimized partitioner (radix sort + epoch-stamped dense trackers +
// segmented scan, see partitioner.go) must reproduce byte-for-byte; the
// parity property suite and the before/after benchmarks run it, nothing
// on the hot path does.
func PartitionGraphReference(g *graph.Graph, plan GraphPlan, statAttrs []Attr) *Partition {
	e := g.NumEdges()
	reader := NewAttrReader(g)

	key := sortKey(plan)
	order := make([]int32, e)
	for i := range order {
		order[i] = int32(i)
	}
	if len(key) > 0 {
		// Precompute key columns once; comparator over cached columns.
		cols := make([][]int32, len(key))
		for i, a := range key {
			col := make([]int32, e)
			for ei := 0; ei < e; ei++ {
				col[ei] = reader.Value(a, ei)
			}
			cols[i] = col
		}
		sort.SliceStable(order, func(x, y int) bool {
			a, b := order[x], order[y]
			for _, col := range cols {
				if col[a] != col[b] {
					return col[a] < col[b]
				}
			}
			return a < b
		})
	}

	// Which attributes get per-task unique stats.
	want := make([]bool, NumAttrs)
	for _, a := range statAttrs {
		want[a] = true
	}
	for _, r := range plan.Restrictions {
		want[r.Attr] = true
	}

	p := &Partition{Plan: plan, Graph: g, Order: order}
	type tracker struct {
		attr  Attr
		limit int // 0 ⇒ stats only, no closing
		set   map[int32]struct{}
	}
	var tracks []*tracker
	for a := Attr(0); a < NumAttrs; a++ {
		if !want[a] {
			continue
		}
		tr := &tracker{attr: a, set: make(map[int32]struct{})}
		for _, r := range plan.Restrictions {
			if r.Attr == a && r.Kind == Exact {
				tr.limit = r.Limit
			}
		}
		tracks = append(tracks, tr)
	}

	offsets := []int32{0}
	closeTask := func(end int32) {
		offsets = append(offsets, end)
		for _, tr := range tracks {
			if p.Uniq[tr.attr] == nil {
				p.Uniq[tr.attr] = []int32{}
			}
			p.Uniq[tr.attr] = append(p.Uniq[tr.attr], int32(len(tr.set)))
			clear(tr.set)
		}
	}

	for pos := 0; pos < e; pos++ {
		edge := int(order[pos])
		// Would adding this edge violate any Exact restriction?
		violates := false
		for _, tr := range tracks {
			if tr.limit == 0 {
				continue
			}
			v := reader.Value(tr.attr, edge)
			if _, ok := tr.set[v]; !ok && len(tr.set) >= tr.limit {
				violates = true
				break
			}
		}
		if violates && pos > int(offsets[len(offsets)-1]) {
			closeTask(int32(pos))
		}
		for _, tr := range tracks {
			tr.set[reader.Value(tr.attr, edge)] = struct{}{}
		}
	}
	if e > 0 {
		closeTask(int32(e))
	}
	p.TaskOffsets = offsets
	if e == 0 {
		p.TaskOffsets = []int32{0}
	}
	// Ensure stat slices exist even for empty graphs.
	for _, tr := range tracks {
		if p.Uniq[tr.attr] == nil {
			p.Uniq[tr.attr] = []int32{}
		}
	}
	return p
}
