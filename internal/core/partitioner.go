package core

import (
	"math"

	"wisegraph/internal/graph"
	"wisegraph/internal/parallel"
	"wisegraph/internal/tensor"
)

// This file is the optimized partition engine behind PartitionGraph. It
// replaces the reference implementation's two super-linear pieces:
//
//   - the comparator sort.SliceStable over key columns becomes a stable
//     LSD radix sort over the precomputed int32 columns (8- or 16-bit
//     digits, histogram passes parallelized over fixed edge segments);
//   - the per-edge map[int32]struct{} unique trackers become epoch-stamped
//     dense arrays: attribute values are bounded (ids by V or E, types by
//     NumTypes, degrees by the max degree), so membership is one array
//     read against a generation counter and "clear" is gen++.
//
// The greedy scan itself is split across workers on fixed segments of the
// sorted order. Each worker scans its segment as if a task started at its
// first position; a sequential stitch pass then repairs the seams exactly:
// it re-scans the open task crossing each seam and, as soon as one of its
// task closes lands on a position the segment's local scan also treated as
// a task start, the greedy process — which is memoryless from any task
// start — is provably identical from there on, so the rest of the
// segment's local boundaries and unique counts are adopted wholesale.
// The result is byte-identical to PartitionGraphReference for every plan
// and worker count (see partition_parity_test.go).
//
// All scratch ([]int32 columns, radix histograms, stamp arrays) comes from
// internal/tensor's int32 recycle pool. A Partitioner retains it between
// calls, so steady-state repartitioning (sampled-training pipelines, the
// joint search's plan sweep) allocates only the returned Partition.

// Partitioner partitions graphs while reusing internal scratch buffers
// across calls. Not safe for concurrent use; create one per goroutine
// (the package-level PartitionGraph draws from a sync.Pool of them).
type Partitioner struct {
	cols [][]int32 // sort-key value columns
	tmp  []int32   // radix ping-pong buffer
	hist []int32   // radix histograms (per-segment concatenated)

	// Persistent stamp arrays with monotonically increasing generations:
	// a value is "in the current task" iff stamps[v] == gen. Generations
	// never reset while a buffer lives, so stale stamps from earlier
	// calls (or earlier tasks) can never alias the current generation.
	stamps [NumAttrs][]int32
	gens   [NumAttrs]int32
}

// NewPartitioner returns an empty Partitioner; scratch is acquired from
// the shared pool on first use and retained between calls.
func NewPartitioner() *Partitioner { return &Partitioner{} }

// Release returns all retained scratch to the shared pool. The
// Partitioner remains usable; the next call re-acquires buffers.
func (pt *Partitioner) Release() {
	for i := range pt.cols {
		tensor.PutI32(pt.cols[i])
		pt.cols[i] = nil
	}
	pt.cols = pt.cols[:0]
	tensor.PutI32(pt.tmp)
	pt.tmp = nil
	tensor.PutI32(pt.hist)
	pt.hist = nil
	for a := range pt.stamps {
		tensor.PutI32(pt.stamps[a])
		pt.stamps[a] = nil
		pt.gens[a] = 0
	}
}

// Partition applies plan to g exactly like PartitionGraph (it is its
// implementation) while reusing this Partitioner's scratch buffers.
func (pt *Partitioner) Partition(g *graph.Graph, plan GraphPlan, statAttrs []Attr) *Partition {
	e := g.NumEdges()
	reader := NewAttrReader(g)
	key := sortKey(plan)

	order := make([]int32, e)
	parallel.ForRange(e, 1<<15, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			order[i] = int32(i)
		}
	})

	// Materialize key columns once (they feed both the sort and the scan)
	// and radix-sort the identity order into the plan's edge order.
	colOf := map[Attr][]int32{}
	if len(key) > 0 && e > 1 {
		for i, a := range key {
			if i < len(pt.cols) {
				pt.cols[i] = growI32(pt.cols[i], e)
			} else {
				pt.cols = append(pt.cols, tensor.GetI32(e))
			}
			col := pt.cols[i]
			attr := a
			parallel.ForRange(e, 1<<14, func(lo, hi int) {
				for ei := lo; ei < hi; ei++ {
					col[ei] = reader.Value(attr, ei)
				}
			})
			colOf[a] = col
		}
		pt.radixSort(order, pt.cols[:len(key)])
	}

	// Tracker configuration: statAttrs plus restricted attrs, in ascending
	// attribute order (the order per-task Uniq rows are emitted in).
	var want [NumAttrs]bool
	for _, a := range statAttrs {
		want[a] = true
	}
	for _, r := range plan.Restrictions {
		want[r.Attr] = true
	}
	var cfgs []trackCfg
	for a := Attr(0); a < NumAttrs; a++ {
		if !want[a] {
			continue
		}
		limit := int32(0)
		for _, r := range plan.Restrictions {
			if r.Attr == a && r.Kind == Exact {
				limit = int32(r.Limit)
			}
		}
		cfgs = append(cfgs, trackCfg{attr: a, limit: limit, col: colOf[a], bound: attrBound(reader, g, a)})
	}

	p := &Partition{Plan: plan, Graph: g, Order: order}
	if e == 0 {
		p.TaskOffsets = []int32{0}
		for _, c := range cfgs {
			p.Uniq[c.attr] = []int32{}
		}
		return p
	}
	offsets, uniq := pt.scan(reader, order, cfgs, e)
	p.TaskOffsets = offsets
	for i, c := range cfgs {
		p.Uniq[c.attr] = uniq[i]
	}
	return p
}

// trackCfg describes one tracked attribute for a scan.
type trackCfg struct {
	attr  Attr
	limit int32   // 0 ⇒ stats only, no closing
	col   []int32 // cached key column, nil ⇒ read through AttrReader
	bound int     // stamp-array size (max value + 1); 0 for edge-id
}

// attrBound returns an exclusive upper bound on the attribute's values.
func attrBound(reader *AttrReader, g *graph.Graph, a Attr) int {
	switch a {
	case AttrEdgeID:
		return 0 // counter-tracked: every edge id is distinct
	case AttrSrcID, AttrDstID:
		return g.NumVertices
	case AttrEdgeType:
		if g.NumTypes < 1 {
			return 1
		}
		return g.NumTypes
	case AttrSrcDegree:
		return int(maxI32(reader.outDeg)) + 1
	case AttrDstDegree:
		return int(maxI32(reader.inDeg)) + 1
	default:
		return g.NumVertices
	}
}

func maxI32(xs []int32) int32 {
	var m int32
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// growI32 resizes buf to length n, reallocating from the pool when the
// capacity is insufficient. Contents are unspecified; callers overwrite.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	tensor.PutI32(buf)
	return tensor.GetI32(n)
}

// ---- radix sort ----

const (
	radixBitsLarge  = 16
	radixBitsSmall  = 8
	radixSmallLimit = 1 << 14 // below this, 8-bit digits beat histogram cost
	segMinEdges     = 1 << 14 // minimum edges per parallel segment
)

// segmentsFor picks a fixed segment count for e items: bounded by the
// worker cap and by a minimum per-segment size.
func segmentsFor(e int) int {
	s := parallel.MaxWorkers()
	if m := e / segMinEdges; m < s {
		s = m
	}
	if s < 1 {
		s = 1
	}
	return s
}

// radixSort stably sorts order by the concatenated columns (first column
// most significant; ties keep the current — identity — order, matching
// the reference comparator's final edge-id tie-break). Values must be
// non-negative, which holds for every attribute (ids, types, degrees).
func (pt *Partitioner) radixSort(order []int32, cols [][]int32) {
	e := len(order)
	pt.tmp = growI32(pt.tmp, e)
	bits := radixBitsLarge
	if e < radixSmallLimit {
		bits = radixBitsSmall
	}
	radix := 1 << bits
	cur, alt := order, pt.tmp
	for c := len(cols) - 1; c >= 0; c-- {
		col := cols[c]
		maxv := maxI32(col)
		if maxv == 0 {
			continue // constant column: stability keeps the order as is
		}
		for shift := uint(0); shift == 0 || maxv>>shift != 0; shift += uint(bits) {
			pt.countingPass(cur, alt, col, shift, radix)
			cur, alt = alt, cur
		}
	}
	if len(cur) > 0 && &cur[0] != &order[0] {
		copy(order, cur)
	}
}

// countingPass scatters src into dst ordered stably by the digit
// (col[x]>>shift)&(radix-1). Large inputs histogram and scatter in
// parallel over fixed segments; the per-(segment, digit) slot ranges are
// disjoint and ordered segment-major, so the output is identical to the
// sequential pass for any worker count.
func (pt *Partitioner) countingPass(src, dst, col []int32, shift uint, radix int) {
	e := len(src)
	mask := int32(radix - 1)
	segs := segmentsFor(e)
	if segs <= 1 {
		pt.hist = growI32(pt.hist, radix)
		hist := pt.hist
		clear(hist)
		for _, x := range src {
			hist[(col[x]>>shift)&mask]++
		}
		run := int32(0)
		for d := range hist {
			c := hist[d]
			hist[d] = run
			run += c
		}
		for _, x := range src {
			d := (col[x] >> shift) & mask
			dst[hist[d]] = x
			hist[d]++
		}
		return
	}
	per := (e + segs - 1) / segs
	segs = (e + per - 1) / per // re-derive so the last segment is non-empty
	pt.hist = growI32(pt.hist, segs*radix)
	hist := pt.hist
	clear(hist)
	parallel.For(segs, 1, func(s int) {
		h := hist[s*radix : (s+1)*radix]
		lo, hi := s*per, (s+1)*per
		if hi > e {
			hi = e
		}
		for _, x := range src[lo:hi] {
			h[(col[x]>>shift)&mask]++
		}
	})
	run := int32(0)
	for d := 0; d < radix; d++ {
		for s := 0; s < segs; s++ {
			i := s*radix + d
			c := hist[i]
			hist[i] = run
			run += c
		}
	}
	parallel.For(segs, 1, func(s int) {
		h := hist[s*radix : (s+1)*radix]
		lo, hi := s*per, (s+1)*per
		if hi > e {
			hi = e
		}
		for _, x := range src[lo:hi] {
			d := (col[x] >> shift) & mask
			dst[h[d]] = x
			h[d]++
		}
	})
}

// ---- greedy scan ----

// scanTrack is one attribute's unique tracker during a scan.
type scanTrack struct {
	attr    Attr
	limit   int32
	col     []int32
	isCount bool // edge-id: all values distinct, a counter suffices
	stamps  []int32
	gen     int32
	count   int32
}

func (t *scanTrack) value(reader *AttrReader, edge int32) int32 {
	if t.col != nil {
		return t.col[edge]
	}
	return reader.Value(t.attr, int(edge))
}

// scanState is one scanner's tracker set (a worker's or the stitcher's).
type scanState struct {
	tracks []scanTrack
}

// newTask resets every tracker for a fresh task (gen++ is the O(1) clear).
func (st *scanState) newTask() {
	for i := range st.tracks {
		t := &st.tracks[i]
		t.gen++
		t.count = 0
	}
}

// violates reports whether adding edge would exceed an Exact limit.
func (st *scanState) violates(reader *AttrReader, edge int32) bool {
	for i := range st.tracks {
		t := &st.tracks[i]
		if t.limit == 0 {
			continue
		}
		if t.isCount {
			if t.count >= t.limit {
				return true
			}
			continue
		}
		if v := t.value(reader, edge); t.stamps[v] != t.gen && t.count >= t.limit {
			return true
		}
	}
	return false
}

// add records edge in every tracker.
func (st *scanState) add(reader *AttrReader, edge int32) {
	for i := range st.tracks {
		t := &st.tracks[i]
		if t.isCount {
			t.count++
			continue
		}
		if v := t.value(reader, edge); t.stamps[v] != t.gen {
			t.stamps[v] = t.gen
			t.count++
		}
	}
}

// segOut collects one segment's locally closed tasks: boundary positions
// plus, per tracker, the closed task's unique count.
type segOut struct {
	closes []int32
	uniq   [][]int32
}

func newSegOut(tracks int) *segOut {
	return &segOut{uniq: make([][]int32, tracks)}
}

func (o *segOut) close(st *scanState, pos int32) {
	o.closes = append(o.closes, pos)
	for i := range st.tracks {
		o.uniq[i] = append(o.uniq[i], st.tracks[i].count)
	}
}

// scanSegment runs the greedy scan over positions [lo, hi) of order,
// assuming a task starts at lo with st freshly reset. forceEnd closes the
// trailing task at hi (used by the final segment, where hi is the edge
// count — mirroring the reference's unconditional final close).
func scanSegment(st *scanState, reader *AttrReader, order []int32, lo, hi int, forceEnd bool, out *segOut) {
	st.newTask()
	start := lo
	for pos := lo; pos < hi; pos++ {
		edge := order[pos]
		if pos > start && st.violates(reader, edge) {
			out.close(st, int32(pos))
			st.newTask()
			start = pos
		}
		st.add(reader, edge)
	}
	if forceEnd && hi > start {
		out.close(st, int32(hi))
	}
}

// stitchState builds a scanState over the Partitioner's persistent stamp
// buffers, growing them (zero-filled) as needed and continuing their
// generation counters.
func (pt *Partitioner) stitchState(cfgs []trackCfg, e int) *scanState {
	st := &scanState{tracks: make([]scanTrack, len(cfgs))}
	for i, c := range cfgs {
		t := &st.tracks[i]
		t.attr, t.limit, t.col = c.attr, c.limit, c.col
		if c.attr == AttrEdgeID {
			t.isCount = true
			continue
		}
		s := pt.stamps[c.attr]
		switch {
		case cap(s) < c.bound:
			tensor.PutI32(s)
			s = tensor.GetI32(c.bound) // zero-filled
			pt.gens[c.attr] = 0
		case len(s) < c.bound:
			old := len(s)
			s = s[:c.bound]
			clear(s[old:]) // pool capacity beyond the old length is stale
		}
		// A call closes at most e+1 tasks; re-zero if gen could overflow.
		if pt.gens[c.attr] > math.MaxInt32-int32(e)-2 {
			clear(s)
			pt.gens[c.attr] = 0
		}
		pt.stamps[c.attr] = s
		t.stamps = s
		t.gen = pt.gens[c.attr]
	}
	return st
}

// saveGens persists the stitch state's generations back to the
// Partitioner so the next call continues (never reuses) them.
func (pt *Partitioner) saveGens(st *scanState) {
	for i := range st.tracks {
		if t := &st.tracks[i]; !t.isCount {
			pt.gens[t.attr] = t.gen
		}
	}
}

// newWorkerState builds a transient scanState with pooled (zero-filled)
// stamp buffers; release returns them.
func newWorkerState(cfgs []trackCfg) *scanState {
	st := &scanState{tracks: make([]scanTrack, len(cfgs))}
	for i, c := range cfgs {
		t := &st.tracks[i]
		t.attr, t.limit, t.col = c.attr, c.limit, c.col
		if c.attr == AttrEdgeID {
			t.isCount = true
			continue
		}
		t.stamps = tensor.GetI32(c.bound)
	}
	return st
}

func (st *scanState) release() {
	for i := range st.tracks {
		if t := &st.tracks[i]; !t.isCount {
			tensor.PutI32(t.stamps)
			t.stamps = nil
		}
	}
}

// scan produces the task offsets ([0, ..., e]) and per-tracker unique
// counts for the sorted order. e must be > 0.
func (pt *Partitioner) scan(reader *AttrReader, order []int32, cfgs []trackCfg, e int) ([]int32, [][]int32) {
	anyExact := false
	for _, c := range cfgs {
		if c.limit > 0 {
			anyExact = true
			break
		}
	}
	if !anyExact {
		// No Exact restriction ⇒ a single task holding every edge; the
		// per-attribute stats are global distinct counts, computed with
		// one stamp pass per tracker (trackers run concurrently).
		st := pt.stitchState(cfgs, e)
		st.newTask()
		parallel.For(len(st.tracks), 1, func(i int) {
			t := &st.tracks[i]
			if t.isCount {
				t.count = int32(e)
				return
			}
			for ei := 0; ei < e; ei++ {
				var v int32
				if t.col != nil {
					v = t.col[ei]
				} else {
					v = reader.Value(t.attr, ei)
				}
				if t.stamps[v] != t.gen {
					t.stamps[v] = t.gen
					t.count++
				}
			}
		})
		uniq := make([][]int32, len(cfgs))
		for i := range uniq {
			uniq[i] = []int32{st.tracks[i].count}
		}
		pt.saveGens(st)
		return []int32{0, int32(e)}, uniq
	}

	segs := segmentsFor(e)
	if segs <= 1 {
		st := pt.stitchState(cfgs, e)
		out := newSegOut(len(cfgs))
		scanSegment(st, reader, order, 0, e, true, out)
		pt.saveGens(st)
		offsets := make([]int32, 0, len(out.closes)+1)
		offsets = append(offsets, 0)
		offsets = append(offsets, out.closes...)
		return offsets, out.uniq
	}

	per := (e + segs - 1) / segs
	segs = (e + per - 1) / per // last segment must be non-empty
	outs := make([]*segOut, segs)
	parallel.For(segs, 1, func(s int) {
		lo, hi := s*per, (s+1)*per
		if hi > e {
			hi = e
		}
		st := newWorkerState(cfgs)
		out := newSegOut(len(cfgs))
		scanSegment(st, reader, order, lo, hi, s == segs-1, out)
		st.release()
		outs[s] = out
	})
	return pt.stitch(reader, order, cfgs, outs, per, e)
}

// stitch repairs segment seams sequentially and assembles the global
// offsets and unique counts. A segment whose start coincides with the
// current task start is adopted wholesale; otherwise the open task is
// re-scanned until one of its closes lands on a position the segment's
// local scan treated as a task start — from a shared task start the
// greedy process is deterministic, so the segment's remaining local
// results are exact and adopted without re-scanning.
func (pt *Partitioner) stitch(reader *AttrReader, order []int32, cfgs []trackCfg, outs []*segOut, per, e int) ([]int32, [][]int32) {
	st := pt.stitchState(cfgs, e)
	offsets := []int32{0}
	uniq := make([][]int32, len(cfgs))
	for i := range uniq {
		uniq[i] = []int32{}
	}
	adopt := func(out *segOut, from int) {
		offsets = append(offsets, out.closes[from:]...)
		for i := range uniq {
			uniq[i] = append(uniq[i], out.uniq[i][from:]...)
		}
	}
	closeGlobal := func(pos int32) {
		offsets = append(offsets, pos)
		for i := range uniq {
			uniq[i] = append(uniq[i], st.tracks[i].count)
		}
	}

	segs := len(outs)
	cur := 0 // start position of the current open task
	for s := 0; s < segs; s++ {
		lo, hi := s*per, (s+1)*per
		if hi > e {
			hi = e
		}
		out := outs[s]
		if cur == lo {
			// Aligned: the local scan's assumption held exactly.
			adopt(out, 0)
			if n := len(out.closes); n > 0 {
				cur = int(out.closes[n-1])
			}
			continue
		}
		// Re-scan the open task from cur; hand off to the local results at
		// the first close that matches a local task start.
		st.newTask()
		start := cur
		resynced := false
		for pos := cur; pos < hi; pos++ {
			edge := order[pos]
			if pos > start && st.violates(reader, edge) {
				p := int32(pos)
				closeGlobal(p)
				st.newTask()
				start = pos
				if pos >= lo {
					if idx := adoptIndex(out, p, int32(lo)); idx >= 0 {
						adopt(out, idx)
						if len(out.closes) > idx {
							cur = int(out.closes[len(out.closes)-1])
						} else {
							cur = pos
						}
						resynced = true
						break
					}
				}
			}
			st.add(reader, edge)
		}
		if !resynced {
			if s == segs-1 && hi > start {
				closeGlobal(int32(hi))
				start = hi
			}
			cur = start
		}
	}
	pt.saveGens(st)
	return offsets, uniq
}

// adoptIndex returns the index into out.closes from which the segment's
// local results may be adopted after the stitcher closed a task at p, or
// -1 if p is not a local task start. Local task starts are the segment's
// first position lo (the local scan's assumption) and every local close.
func adoptIndex(out *segOut, p, lo int32) int {
	if p == lo {
		return 0
	}
	n := len(out.closes)
	i, j := 0, n
	for i < j {
		h := (i + j) / 2
		if out.closes[h] < p {
			i = h + 1
		} else {
			j = h
		}
	}
	if i < n && out.closes[i] == p {
		return i + 1
	}
	return -1
}
