package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"wisegraph/internal/graph"
)

// RestrictKind selects the restriction semantics for a table entry
// (paper §4.2).
type RestrictKind int

const (
	// Exact limits the number of unique values to Limit.
	Exact RestrictKind = iota
	// Min prefers gTasks with as few unique values as possible: the
	// attribute participates in the sort key but does not close tasks.
	Min
)

// Restriction bounds one edge attribute within a gTask.
type Restriction struct {
	Attr  Attr
	Kind  RestrictKind
	Limit int // used when Kind == Exact
}

// String renders the restriction in the paper's uniq(attr)=k notation.
func (r Restriction) String() string {
	if r.Kind == Min {
		return fmt.Sprintf("uniq(%s)=min", r.Attr)
	}
	return fmt.Sprintf("uniq(%s)=%d", r.Attr, r.Limit)
}

// GraphPlan is a graph partition plan: a named set of restrictions.
type GraphPlan struct {
	Name         string
	Restrictions []Restriction
}

// String renders the plan.
func (p GraphPlan) String() string {
	parts := make([]string, len(p.Restrictions))
	for i, r := range p.Restrictions {
		parts[i] = r.String()
	}
	return fmt.Sprintf("%s{%s}", p.Name, strings.Join(parts, "&"))
}

// VertexCentric is uniq(dst-id)=1, the partition used by Seastar-style
// systems.
func VertexCentric() GraphPlan {
	return GraphPlan{Name: "vertex-centric", Restrictions: []Restriction{{Attr: AttrDstID, Kind: Exact, Limit: 1}}}
}

// EdgeCentric is uniq(edge-id)=1.
func EdgeCentric() GraphPlan {
	return GraphPlan{Name: "edge-centric", Restrictions: []Restriction{{Attr: AttrEdgeID, Kind: Exact, Limit: 1}}}
}

// WholeGraph is the unrestricted plan: one gTask holding every edge, the
// degenerate partition the tensor-centric approach corresponds to.
func WholeGraph() GraphPlan { return GraphPlan{Name: "whole-graph"} }

// Partition is the result of applying a plan to a graph: a permutation of
// the edges plus contiguous gTask ranges over that permutation, with
// per-task unique-value statistics for every attribute of interest.
type Partition struct {
	Plan  GraphPlan
	Graph *graph.Graph
	// Order maps position → original edge index; tasks are contiguous
	// runs of Order.
	Order []int32
	// TaskOffsets has NumTasks()+1 entries delimiting each task's run.
	TaskOffsets []int32
	// Uniq[a] is the per-task count of distinct values of attribute a
	// (nil for attributes that were not requested).
	Uniq [NumAttrs][]int32
}

// NumTasks returns the number of gTasks.
func (p *Partition) NumTasks() int { return len(p.TaskOffsets) - 1 }

// TaskLen returns the number of edges in task t.
func (p *Partition) TaskLen(t int) int {
	return int(p.TaskOffsets[t+1] - p.TaskOffsets[t])
}

// TaskEdges returns the original edge indices of task t (a view into
// Order; do not mutate).
func (p *Partition) TaskEdges(t int) []int32 {
	return p.Order[p.TaskOffsets[t]:p.TaskOffsets[t+1]]
}

// TaskUniq returns the unique-value count of attribute a within task t.
// The attribute must have been included in statAttrs at partition time.
func (p *Partition) TaskUniq(t int, a Attr) int32 {
	u := p.Uniq[a]
	if u == nil {
		panic(fmt.Sprintf("core: stats for %s were not collected", a))
	}
	return u[t]
}

// TaskOfEdge returns, for visualization (paper Figure 15), a per-edge task
// id array indexed by original edge id.
func (p *Partition) TaskOfEdge() []int32 {
	out := make([]int32, len(p.Order))
	for t := 0; t < p.NumTasks(); t++ {
		for _, e := range p.TaskEdges(t) {
			out[e] = int32(t)
		}
	}
	return out
}

// sortKey builds a plan's edge sort key: Min attrs first (so similar
// values cluster and the minimum-uniqueness preference holds), then Exact
// attrs ordered by ascending limit — tighter restrictions sort first so
// that, e.g., uniq(src)=K & uniq(type)=1 groups globally by type and then
// batches sources within each type, instead of fragmenting at every type
// change.
func sortKey(plan GraphPlan) []Attr {
	var key []Attr
	for _, r := range plan.Restrictions {
		if r.Kind == Min {
			key = append(key, r.Attr)
		}
	}
	exact := make([]Restriction, 0, len(plan.Restrictions))
	for _, r := range plan.Restrictions {
		if r.Kind == Exact {
			exact = append(exact, r)
		}
	}
	sort.SliceStable(exact, func(i, j int) bool { return exact[i].Limit < exact[j].Limit })
	for _, r := range exact {
		key = append(key, r.Attr)
	}
	return key
}

// partitionerPool recycles Partitioners (and the scratch they retain)
// across PartitionGraph calls, so repeated one-shot partitioning — the
// joint search tries a dozen plans, sampled training partitions every
// mini-batch — stops allocating sort columns and stamp arrays.
var partitionerPool = sync.Pool{New: func() any { return NewPartitioner() }}

// PartitionGraph applies plan to g with the paper's greedy method: sort
// edges by the restricted attributes (Min attributes first so similar
// values cluster, then Exact attributes), scan in order, and close the
// current gTask when adding the next edge would violate an Exact
// restriction. statAttrs lists the attributes whose per-task unique counts
// the caller needs (the model's indexing attributes plus any inherent
// attributes the pattern analysis wants); restricted attributes are always
// included.
//
// The implementation is the multi-core linear-time engine in
// partitioner.go (stable LSD radix sort, epoch-stamped unique trackers,
// segmented scan with exact seam stitching); its output is byte-identical
// to PartitionGraphReference for every plan and worker count.
func PartitionGraph(g *graph.Graph, plan GraphPlan, statAttrs []Attr) *Partition {
	pt := partitionerPool.Get().(*Partitioner)
	p := pt.Partition(g, plan, statAttrs)
	partitionerPool.Put(pt)
	return p
}

// Validate checks partition invariants: Order is a permutation of the
// edges, offsets are monotone and cover [0, E], and recorded unique counts
// match a recount. It is used by tests and the property suite.
func (p *Partition) Validate() error {
	e := p.Graph.NumEdges()
	if len(p.Order) != e {
		return fmt.Errorf("core: order has %d entries for %d edges", len(p.Order), e)
	}
	seen := make([]bool, e)
	for _, x := range p.Order {
		if x < 0 || int(x) >= e || seen[x] {
			return fmt.Errorf("core: order is not a permutation (edge %d)", x)
		}
		seen[x] = true
	}
	if len(p.TaskOffsets) < 1 || p.TaskOffsets[0] != 0 || int(p.TaskOffsets[len(p.TaskOffsets)-1]) != e {
		return fmt.Errorf("core: offsets %v do not cover %d edges", p.TaskOffsets, e)
	}
	reader := NewAttrReader(p.Graph)
	for t := 0; t < p.NumTasks(); t++ {
		if p.TaskOffsets[t+1] <= p.TaskOffsets[t] {
			return fmt.Errorf("core: empty task %d", t)
		}
		for a := Attr(0); a < NumAttrs; a++ {
			if p.Uniq[a] == nil {
				continue
			}
			set := map[int32]struct{}{}
			for _, ei := range p.TaskEdges(t) {
				set[reader.Value(a, int(ei))] = struct{}{}
			}
			if int32(len(set)) != p.Uniq[a][t] {
				return fmt.Errorf("core: task %d uniq(%s) recorded %d, actual %d", t, a, p.Uniq[a][t], len(set))
			}
		}
	}
	return nil
}
