package exec

import (
	"errors"
	"testing"

	"wisegraph/internal/device"
)

func testCtx() *Ctx {
	return NewCtx(device.New(device.Spec{
		SIMTFLOPS: 1e12, TensorCoreFLOPS: 1e12, MemBandwidth: 1e12,
		LaunchOverhead: 0, NumUnits: 1,
	}))
}

func TestLaunchRunsBodyOnlyWhenComputing(t *testing.T) {
	ctx := testCtx()
	ran := false
	ctx.Launch(device.Kernel{FLOPs: 1}, func() { ran = true })
	if !ran {
		t.Fatal("body must run when Compute is set")
	}
	ctx.Compute = false
	ran = false
	ctx.Launch(device.Kernel{FLOPs: 1}, func() { ran = true })
	if ran {
		t.Fatal("body must not run when Compute is false")
	}
}

func TestTrainingMultipliers(t *testing.T) {
	// neural kernels ×3, indexing ×2
	base := func(cat device.Category) float64 {
		ctx := testCtx()
		ctx.Launch(device.Kernel{Cat: cat, FLOPs: 1e12}, nil)
		return ctx.Dev.Stats().SimSeconds
	}
	train := func(cat device.Category) float64 {
		ctx := testCtx()
		ctx.Training = true
		ctx.Launch(device.Kernel{Cat: cat, FLOPs: 1e12}, nil)
		return ctx.Dev.Stats().SimSeconds
	}
	if r := train(device.CatNeural) / base(device.CatNeural); r < 2.99 || r > 3.01 {
		t.Fatalf("neural training multiplier %v, want 3", r)
	}
	if r := train(device.CatIndexing) / base(device.CatIndexing); r < 1.99 || r > 2.01 {
		t.Fatalf("indexing training multiplier %v, want 2", r)
	}
}

func TestTrainingScalesUnitTimes(t *testing.T) {
	ctx := testCtx()
	ctx.Training = true
	ctx.Launch(device.Kernel{Cat: device.CatNeural, UnitTimes: []float64{1, 1}}, nil)
	// 2 items × 3 multiplier on 1 unit = 6 seconds
	if got := ctx.Dev.Stats().SimSeconds; got < 5.99 || got > 6.01 {
		t.Fatalf("unit-time training scaling: %v, want 6", got)
	}
}

func TestAllocOOM(t *testing.T) {
	ctx := testCtx()
	ctx.MemCap = 1e9
	ctx.PaperScale = 1000
	if err := ctx.Alloc(5e5); err != nil { // 5e5 × 1000 = 5e8 < 1e9
		t.Fatalf("unexpected OOM: %v", err)
	}
	err := ctx.Alloc(2e6) // 2e9 > 1e9
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
	if ctx.PeakWorkspace() < 2e9 {
		t.Fatalf("peak workspace %v", ctx.PeakWorkspace())
	}
	ctx.ResetWorkspace()
	if ctx.PeakWorkspace() != 0 {
		t.Fatal("reset failed")
	}
	if err := ctx.Alloc(5e5); err != nil {
		t.Fatalf("post-reset alloc failed: %v", err)
	}
}

func TestAllocUnlimitedWhenNoCap(t *testing.T) {
	ctx := testCtx()
	ctx.MemCap = 0
	if err := ctx.Alloc(1e30); err != nil {
		t.Fatalf("capless context must not OOM: %v", err)
	}
}
