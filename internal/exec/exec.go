// Package exec defines the shared execution context for conv executors:
// kernel accounting against the simulated device, training-mode backward
// accounting, and device-memory (OOM) tracking at paper scale.
//
// Executors come in three families, mirroring the paper's taxonomy:
// tensor-centric (internal/baseline), graph-centric (internal/baseline)
// and gTask-based (internal/kernels). All families produce numerically
// identical results — the strategies differ only in how the workload is
// partitioned — so executors obtain the numeric output from the reference
// layer implementation and differ in the kernels they account.
package exec

import (
	"errors"
	"fmt"

	"wisegraph/internal/device"
)

// ErrOOM is returned when an executor's modeled workspace exceeds the
// device memory at paper scale (the white blocks of paper Figure 13).
var ErrOOM = errors.New("exec: device out of memory at paper scale")

// Ctx carries the device, the execution mode, and the memory model.
type Ctx struct {
	Dev *device.Device
	// Training accounts the backward pass too: a neural kernel's
	// gradient needs two extra matmuls (3× FLOPs total) and an indexing
	// kernel's transpose doubles its traffic (2×) — the standard
	// fwd+bwd accounting.
	Training bool
	// Compute controls whether executors produce real numeric outputs
	// (tests, training) or only account kernels (search, large benches).
	Compute bool
	// PaperScale multiplies workspace sizes to model the paper-scale
	// dataset on the 40 GB device; 0 or 1 means no scaling.
	PaperScale float64
	// MemCap is the device memory in bytes (default A100 40 GB).
	MemCap float64
	// TraceID, when non-zero, groups the spans an executor records under
	// one logical request/step in the observability layer (internal/obs).
	// Callers that own a trace (a serve micro-batch, a train step) set it
	// before invoking an executor so the exec-stage span lands on the same
	// timeline as the caller's sample/partition/demux spans.
	TraceID uint64
	// Engine names the execution engine the gTask executor should run
	// layers with: "" or "blocked" for the separate gather → matmul →
	// scatter passes, "fused" for the streaming SpMM that never
	// materializes per-edge intermediates, "device" for the simulated-
	// device path with per-micro-kernel stats. The name is resolved by
	// internal/kernels (exec cannot import it); an unknown name fails the
	// executor call with a descriptive error rather than silently running
	// the default.
	Engine string

	peakWorkspace float64
}

// NewCtx returns a context over dev with the A100's 40 GB capacity.
func NewCtx(dev *device.Device) *Ctx {
	return &Ctx{Dev: dev, Compute: true, PaperScale: 1, MemCap: 40e9}
}

// Launch accounts kernel k (with training multipliers applied) and runs
// body when computing.
func (c *Ctx) Launch(k device.Kernel, body func()) {
	if c.Training {
		switch k.Cat {
		case device.CatNeural:
			k.FLOPs *= 3
			k.Bytes *= 3
		case device.CatIndexing:
			k.FLOPs *= 2
			k.Bytes *= 2
		}
		if k.UnitTimes != nil {
			scaled := make([]float64, len(k.UnitTimes))
			mult := 2.0
			if k.Cat == device.CatNeural {
				mult = 3.0
			}
			for i, t := range k.UnitTimes {
				scaled[i] = t * mult
			}
			k.UnitTimes = scaled
		}
	}
	if !c.Compute {
		body = nil
	}
	c.Dev.Launch(k, body)
}

// Alloc models allocating a workspace of the given size (in bytes at the
// *current* dataset scale); it scales to paper size and fails with ErrOOM
// past the capacity. Workspaces within one executor call are treated as
// live simultaneously (peak = running max of cumulative allocations is
// approximated by the largest single allocation plus persistent state,
// which is what matters for the [E,F] materializations that dominate).
func (c *Ctx) Alloc(bytes float64) error {
	scale := c.PaperScale
	if scale <= 0 {
		scale = 1
	}
	scaled := bytes * scale
	if scaled > c.peakWorkspace {
		c.peakWorkspace = scaled
	}
	if c.peakWorkspace > c.MemCap && c.MemCap > 0 {
		return fmt.Errorf("%w: workspace %.1f GB > %.1f GB", ErrOOM, c.peakWorkspace/1e9, c.MemCap/1e9)
	}
	return nil
}

// ResetWorkspace clears the workspace high-water mark (between layers or
// iterations).
func (c *Ctx) ResetWorkspace() { c.peakWorkspace = 0 }

// PeakWorkspace reports the scaled high-water mark.
func (c *Ctx) PeakWorkspace() float64 { return c.peakWorkspace }
