package wisegraph

import (
	"bytes"
	"math"
	"testing"

	"wisegraph/internal/core"
	"wisegraph/internal/joint"
	"wisegraph/internal/train"
)

// TestEndToEndPipeline walks the full user journey: load a dataset, train
// with a schedule, evaluate metrics, run the joint optimization, verify
// gTask-execution accuracy parity, serialize the plan, reload it, and
// reuse it on fresh sampled subgraphs.
func TestEndToEndPipeline(t *testing.T) {
	ds, err := LoadDataset("AR", DatasetOptions{
		Scale: 400, FeatureDim: 24, Seed: 77, Homophily: 0.85, FeatureNoise: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 1. Train with cosine schedule + early stopping + dropout.
	tr, err := NewTrainer(ds, ModelConfig{
		Kind: SAGE, Hidden: 24, Layers: 2, Dropout: 0.1, Seed: 77,
	}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	stats := tr.RunSchedule(30, 0.02, train.CosineLR{Epochs: 30, MinFactor: 0.1}, &train.EarlyStopper{Patience: 10})
	final := stats[len(stats)-1]
	if final.TestAcc < 0.5 {
		t.Fatalf("test accuracy %.3f too low after %d epochs", final.TestAcc, len(stats))
	}

	// 2. Full metrics.
	m, err := tr.Metrics(ds.TestMask)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Accuracy-final.TestAcc) > 1e-9 {
		t.Fatalf("metrics accuracy %.4f vs epoch accuracy %.4f", m.Accuracy, final.TestAcc)
	}
	if m.MacroF1 <= 0 {
		t.Fatal("macro F1 must be positive after training")
	}

	// 3. Joint optimization + gTask execution parity.
	plan := tr.Tune(A100())
	gtAcc, err := tr.GTaskTestAccuracy(plan)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gtAcc-final.TestAcc) > 0.01 {
		t.Fatalf("parity violated: gTask %.4f vs reference %.4f", gtAcc, final.TestAcc)
	}

	// 4. Checkpoint round trip preserves predictions.
	var ckpt bytes.Buffer
	if err := tr.Model.SaveCheckpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	tr2, _ := NewTrainer(ds, ModelConfig{Kind: SAGE, Hidden: 24, Layers: 2, Dropout: 0.1, Seed: 1234}, 0.02)
	if err := tr2.Model.LoadCheckpoint(bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	m2, _ := tr2.Metrics(ds.TestMask)
	if math.Abs(m2.Accuracy-m.Accuracy) > 1e-9 {
		t.Fatalf("checkpoint changed accuracy: %.4f vs %.4f", m2.Accuracy, m.Accuracy)
	}

	// 5. Plan serialization round trip and reuse on sampled subgraphs.
	data, err := plan.MarshalPlan()
	if err != nil {
		t.Fatal(err)
	}
	kind, gp, op, _, err := joint.UnmarshalPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != SAGE || gp.Name != plan.GraphPlan.Name || op != plan.OpPlan {
		t.Fatalf("plan round trip mismatch: %v %v %v", kind, gp, op)
	}
	st, err := NewSampledTrainer(ds, ModelConfig{Kind: SAGE, Hidden: 24, Layers: 2, Seed: 78}, 0.01, []int{5, 5}, 16, 79)
	if err != nil {
		t.Fatal(err)
	}
	sub := st.NextBatch()
	part := core.PartitionGraph(sub.Graph, gp, []core.Attr{core.AttrSrcID, core.AttrDstID, core.AttrEdgeType, core.AttrDstDegree})
	if err := part.Validate(); err != nil {
		t.Fatal(err)
	}
	if part.Plan.Name != plan.GraphPlan.Name {
		t.Fatal("reloaded plan does not apply")
	}
}
