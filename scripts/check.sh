#!/usr/bin/env bash
# Repository health check: vet, build, and the full test suite under the
# race detector. CI and pre-commit both run this; it must stay fast enough
# to run on every change (a few minutes on one core).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "OK"
