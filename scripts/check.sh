#!/usr/bin/env bash
# Repository health check: vet, build, and the full test suite under the
# race detector. CI and pre-commit both run this; it must stay fast enough
# to run on every change (a few minutes on one core).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
# internal/bench runs ~37s without the race detector; the ~15-20x race
# multiplier on a one-core box puts it at go test's default 10m
# per-package timeout, so give the full race pass explicit headroom.
go test -race -timeout 30m ./...

# The parallel execution substrate (radix/stamped partitioner, segmented
# scans, concurrent joint search) must be byte-identical to the sequential
# reference at every pool width. Re-run the parity and determinism suites
# under the race detector at both scheduler extremes.
NPROC="$(getconf _NPROCESSORS_ONLN)"
PARITY='Parity|Determin|Reuse|Concurrent'
echo "== parity/determinism under -race (GOMAXPROCS=1)"
GOMAXPROCS=1 go test -race -count=1 -run "$PARITY" \
  ./internal/core/ ./internal/graph/ ./internal/joint/

echo "== parity/determinism under -race (GOMAXPROCS=$NPROC)"
GOMAXPROCS="$NPROC" go test -race -count=1 -run "$PARITY" \
  ./internal/core/ ./internal/graph/ ./internal/joint/

# Cross-engine parity: the fused and device execution engines must be
# bitwise-identical to the blocked reference across models, plans and
# worker counts, under the race detector at both scheduler extremes.
ENGINES='Engine|BlockedVsFused|BySrc'
echo "== cross-engine parity under -race (GOMAXPROCS=1)"
GOMAXPROCS=1 go test -race -count=1 -run "$ENGINES" \
  ./internal/kernels/ ./internal/nn/ ./internal/dist/ ./internal/serve/
echo "== cross-engine parity under -race (GOMAXPROCS=$NPROC)"
GOMAXPROCS="$NPROC" go test -race -count=1 -run "$ENGINES" \
  ./internal/kernels/ ./internal/nn/ ./internal/dist/ ./internal/serve/

# Blocked-vs-fused performance smoke (benchstat-style, min of 5): on the
# bandwidth-bound GCN F=64 shape the fused engine must not regress more
# than 10% against blocked. The deterministic bytes-moved win is asserted
# by TestFusedEngineMovesFewerBytes above; this guards wall-clock.
echo "== blocked-vs-fused benchmark smoke (GCN F=64, min of 5)"
go test -run '^$' -bench 'BenchmarkEngineForward/model=GCN/F=64/engine=(blocked|fused)$' \
  -benchtime 3x -count 5 . >"${TMPDIR:-/tmp}/engine_bench.txt"
awk '
  /engine=blocked/ { if (bmin == 0 || $3 < bmin) bmin = $3 }
  /engine=fused/   { if (fmin == 0 || $3 < fmin) fmin = $3 }
  END {
    if (bmin == 0 || fmin == 0) { print "FAIL: benchmark produced no samples"; exit 1 }
    printf "blocked min %.0f ns/op, fused min %.0f ns/op (ratio %.3f)\n", bmin, fmin, fmin / bmin
    if (fmin > 1.10 * bmin) { print "FAIL: fused regressed >10% vs blocked"; exit 1 }
  }' "${TMPDIR:-/tmp}/engine_bench.txt"
echo "engine smoke OK"

# The serving engine's concurrency machinery (admission lock, micro-batch
# coalescing, drain protocol, lock-free metrics) is exercised by a
# dedicated suite that must stay clean under the race detector at both
# scheduler extremes.
SERVE='Concurrent|Shed|Drain|Parity|Canceled'
echo "== serving concurrency under -race (GOMAXPROCS=1)"
GOMAXPROCS=1 go test -race -count=1 -run "$SERVE" ./internal/serve/
echo "== serving concurrency under -race (GOMAXPROCS=$NPROC)"
GOMAXPROCS="$NPROC" go test -race -count=1 -run "$SERVE" ./internal/serve/

# The hot-vertex cache: the cache package's own suite (admission scoring,
# eviction, version gating, concurrent churn) plus the serving-side
# cached-vs-uncached bitwise parity, reload invalidation and cache chaos
# tests, under the race detector at both scheduler extremes. Cached
# logits must be bit-identical to uncached at any cache size, engine and
# worker count — the cache is a performance knob, never a numerics knob.
CACHE='Cache'
echo "== hot-vertex cache under -race (GOMAXPROCS=1)"
GOMAXPROCS=1 go test -race -count=1 ./internal/hotcache/
GOMAXPROCS=1 go test -race -count=1 -run "$CACHE" ./internal/serve/
echo "== hot-vertex cache under -race (GOMAXPROCS=$NPROC)"
GOMAXPROCS="$NPROC" go test -race -count=1 ./internal/hotcache/
GOMAXPROCS="$NPROC" go test -race -count=1 -run "$CACHE" ./internal/serve/

# Cached-path performance smoke (benchstat-style, min of 5): under
# Zipf-1.2 skew the warmed cached path must beat — or at worst stay
# within 10% of — the uncached path per request. Bitwise equality is
# asserted by TestCacheParityBitwise; this guards the win itself.
echo "== cached-vs-uncached benchmark smoke (zipf 1.2, min of 5)"
go test -run '^$' -bench 'BenchmarkPredictZipf/(uncached|cached)$' \
  -benchtime 30x -count 5 ./internal/serve/ >"${TMPDIR:-/tmp}/cache_bench.txt"
awk '
  /PredictZipf\/uncached/ { if (umin == 0 || $3 < umin) umin = $3 }
  /PredictZipf\/cached/   { if (cmin == 0 || $3 < cmin) cmin = $3 }
  END {
    if (umin == 0 || cmin == 0) { print "FAIL: benchmark produced no samples"; exit 1 }
    printf "uncached min %.0f ns/op, cached min %.0f ns/op (ratio %.3f)\n", umin, cmin, cmin / umin
    if (cmin > 1.10 * umin) { print "FAIL: cached path regressed >10% vs uncached at zipf 1.2"; exit 1 }
  }' "${TMPDIR:-/tmp}/cache_bench.txt"
echo "cache smoke OK"

# The sharded serving tier: placement boundaries, ownership validation,
# the hedged RPC ladder, and the fleet-wide guarantees — bitwise parity
# against single-node across shard counts/engines/workers, cache warm-up,
# reload coherence and the chaos drain invariant — under the race
# detector at both scheduler extremes.
SHARD='Sharded|CacheWarm'
echo "== sharded tier under -race (GOMAXPROCS=1)"
GOMAXPROCS=1 go test -race -count=1 ./internal/shard/
GOMAXPROCS=1 go test -race -count=1 -run "$SHARD" ./internal/serve/
echo "== sharded tier under -race (GOMAXPROCS=$NPROC)"
GOMAXPROCS="$NPROC" go test -race -count=1 ./internal/shard/
GOMAXPROCS="$NPROC" go test -race -count=1 -run "$SHARD" ./internal/serve/

# The observability layer's lock-free tracer and histograms are written to
# by every pipeline stage concurrently; its suite must stay clean under
# the race detector at both scheduler extremes.
echo "== observability under -race (GOMAXPROCS=1)"
GOMAXPROCS=1 go test -race -count=1 ./internal/obs/
echo "== observability under -race (GOMAXPROCS=$NPROC)"
GOMAXPROCS="$NPROC" go test -race -count=1 ./internal/obs/

# The fault-injection and resilience battery: deterministic injector,
# distributed parity under straggler/error schedules, serving chaos drain
# invariants, auto-checkpoint recovery, dense gradient checks. The
# bit-identical claims must hold under the race detector at both
# scheduler extremes — concurrency may reorder fault draws but never
# change numerics or leak a request.
FAULTS='Fault|Chaos|Resilient|GradCheck|ParityAcross|Store|Injected|Schedule|Sequence|Rates|Jitter|Exhaustion'
echo "== fault/resilience battery under -race (GOMAXPROCS=1)"
GOMAXPROCS=1 go test -race -count=1 -run "$FAULTS" \
  ./internal/fault/ ./internal/dist/ ./internal/serve/ ./internal/train/ ./internal/nn/
echo "== fault/resilience battery under -race (GOMAXPROCS=$NPROC)"
GOMAXPROCS="$NPROC" go test -race -count=1 -run "$FAULTS" \
  ./internal/fault/ ./internal/dist/ ./internal/serve/ ./internal/train/ ./internal/nn/

# Fuzz smokes: a short budget on every fuzz target. Checkpoint decoding
# must never panic on mutated bytes; CSR construction must preserve the
# degree-sum and permutation invariants on arbitrary COO input.
echo "== fuzz smokes (5s each)"
go test ./internal/nn/ -run '^$' -fuzz '^FuzzCheckpointLoad$' -fuzztime=5s >/dev/null
go test ./internal/nn/ -run '^$' -fuzz '^FuzzConfigRoundTrip$' -fuzztime=5s >/dev/null
go test ./internal/graph/ -run '^$' -fuzz '^FuzzCSRBuild$' -fuzztime=5s >/dev/null
# The shard wire codec faces the network: any accepted payload must be
# canonical (decode∘encode is the identity), every reqid-tagged frame
# must echo its id on re-encode, and no hostile length/reqid combination
# may panic or allocate unboundedly.
go test ./internal/shard/wire/ -run '^$' -fuzz '^FuzzDecode$' -fuzztime=5s >/dev/null
echo "fuzz smokes OK"

# End-to-end serving smoke test: train a tiny checkpoint, serve it over
# HTTP on an ephemeral port, drive real load, then SIGTERM and assert the
# graceful drain left zero requests in flight.
echo "== serve smoke test (train -> serve -> bench -> drain)"
SMOKE=".smoke"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$SMOKE"
}
trap cleanup EXIT
rm -rf "$SMOKE" && mkdir -p "$SMOKE"
go build -o "$SMOKE/" ./cmd/wisegraph-train ./cmd/wisegraph-serve ./cmd/wgserve-bench
"$SMOKE/wisegraph-train" -dataset AR -scale 400 -sampled -epochs 2 \
  -save-checkpoint "$SMOKE/model.ckpt" -trace "$SMOKE/train.trace" >/dev/null
grep -q '"traceEvents"' "$SMOKE/train.trace" \
  || { echo "FAIL: wisegraph-train -trace wrote no trace events"; exit 1; }
"$SMOKE/wisegraph-serve" -dataset AR -scale 400 -checkpoint "$SMOKE/model.ckpt" \
  -addr 127.0.0.1:0 -cache-budget 16MiB >"$SMOKE/serve.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's#.*listening on http://##p' "$SMOKE/serve.log")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: serve did not start"; cat "$SMOKE/serve.log"; exit 1; }
"$SMOKE/wgserve-bench" -url "http://$ADDR" -clients 8 -duration 2s -zipf 1.2 >/dev/null

# Scrape /metrics while the server is live: the exposition must parse,
# every serving counter must be present, and all values non-negative.
curl -sf "http://$ADDR/metrics" >"$SMOKE/metrics.txt" \
  || { echo "FAIL: /metrics scrape failed"; cat "$SMOKE/serve.log"; exit 1; }
for metric in wisegraph_serve_uptime_seconds wisegraph_serve_admitted_total \
  wisegraph_serve_completed_total wisegraph_serve_canceled_total \
  wisegraph_serve_shed_total wisegraph_serve_rejected_draining_total \
  wisegraph_serve_batches_total wisegraph_serve_in_flight \
  wisegraph_serve_queue_depth wisegraph_serve_recent_qps \
  wisegraph_serve_latency_seconds_count wisegraph_serve_batch_size_count \
  wisegraph_stage_duration_seconds_count wisegraph_device_kernels_total \
  wisegraph_serve_cache_hits_total wisegraph_serve_cache_misses_total \
  wisegraph_serve_cache_admitted_total wisegraph_serve_cache_bytes_resident \
  wisegraph_serve_cache_entries wisegraph_serve_cache_capacity_bytes; do
  grep -q "^$metric" "$SMOKE/metrics.txt" \
    || { echo "FAIL: /metrics missing $metric"; cat "$SMOKE/metrics.txt"; exit 1; }
done
awk '/^#/ || NF == 0 { next }
  { v = $NF }
  v != "+Inf" && v != "NaN" && v + 0 < 0 { print "negative metric: " $0; bad = 1 }
  END { exit bad }' "$SMOKE/metrics.txt" \
  || { echo "FAIL: /metrics has negative values"; exit 1; }
# A micro-batch traced end to end is reachable over HTTP too.
curl -sf "http://$ADDR/debug/trace" | grep -q '"traceEvents"' \
  || { echo "FAIL: /debug/trace not serving trace JSON"; exit 1; }
echo "metrics scrape OK"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "FAIL: serve exited non-zero"; cat "$SMOKE/serve.log"; exit 1; }
SERVE_PID=""
grep -q 'drained: in-flight=0' "$SMOKE/serve.log" \
  || { echo "FAIL: drain left requests in flight"; cat "$SMOKE/serve.log"; exit 1; }
# Zipf-1.2 load against a 16MiB cache must actually hit: the drain line
# carries the steady-state hit rate, and an idle cache means the serving
# forward stopped probing it.
grep -q 'cache-hit-rate=' "$SMOKE/serve.log" \
  || { echo "FAIL: drain line has no cache stats despite -cache-budget"; cat "$SMOKE/serve.log"; exit 1; }
echo "serve smoke OK"

# Sharded Zipf scaling smoke: under Zipf-1.2 skew with a deliberately
# capacity-bound 1MiB per-shard cache, 4 shards must beat a single shard
# by more than 1.5x QPS. On this one-core box there is no parallel
# speedup to be had — the win is aggregate cache capacity (the per-node
# RAM the per-shard budget models): the hot working set at this shape is
# ~4MB, so one shard's 1MiB thrashes (~35% hit rate) while 4x1MiB holds
# it (~88%). 2-shard rides along as the intermediate point and must land
# between the two. -batch-delay is dropped to 100us so throughput is
# compute-bound rather than pinned to the micro-batch fill deadline.
echo "== sharded Zipf scaling smoke (1/2/4 shards, 1MiB per-shard cache)"
for s in 1 2 4; do
  "$SMOKE/wisegraph-serve" -dataset AR -scale 100 -hidden 128 -fanout 15,15,15 \
    -loadgen 8 -loadgen-zipf 1.2 -loadgen-duration 3s -batch-delay 100us \
    -cache-budget 1MiB -shards "$s" >"$SMOKE/shard$s.log" 2>&1 \
    || { echo "FAIL: $s-shard loadgen exited non-zero"; cat "$SMOKE/shard$s.log"; exit 1; }
  grep -q 'drained: in-flight=0' "$SMOKE/shard$s.log" \
    || { echo "FAIL: $s-shard drain left requests in flight"; cat "$SMOKE/shard$s.log"; exit 1; }
done
grep -q 'shards=4 shard-in-flight=0' "$SMOKE/shard4.log" \
  || { echo "FAIL: 4-shard drain line missing fleet stats"; cat "$SMOKE/shard4.log"; exit 1; }
qps_of() { sed -n 's/.* qps=\([0-9.]*\) .*/\1/p' "$1" | head -1; }
awk -v q1="$(qps_of "$SMOKE/shard1.log")" -v q2="$(qps_of "$SMOKE/shard2.log")" \
    -v q4="$(qps_of "$SMOKE/shard4.log")" 'BEGIN {
  if (q1 + 0 <= 0 || q2 + 0 <= 0 || q4 + 0 <= 0) { print "FAIL: loadgen reported no qps"; exit 1 }
  printf "1-shard %.0f qps, 2-shard %.0f qps, 4-shard %.0f qps (4-vs-1 ratio %.2f)\n", q1, q2, q4, q4 / q1
  if (q4 <= 1.5 * q1) { print "FAIL: 4-shard QPS not >1.5x single-shard under Zipf 1.2"; exit 1 }
}'
echo "sharded scaling smoke OK"

# TCP cross-process sharding smoke: two wisegraph-shard daemons serving
# the trained checkpoint over localhost, a router pointed at them with
# -shard-addrs, and a single-node reference on the same checkpoint. The
# logits over the wire must be byte-identical to single-node, and a
# SIGTERM must drain router and both daemons to in-flight=0.
echo "== TCP sharded serving smoke (2 daemons + router, logits parity)"
go build -o "$SMOKE/" ./cmd/wisegraph-shard
SHARD_PIDS=()
SHARD_ADDRS=()
for i in 1 2; do
  "$SMOKE/wisegraph-shard" -dataset AR -scale 400 -checkpoint "$SMOKE/model.ckpt" \
    -addr 127.0.0.1:0 >"$SMOKE/tcpshard$i.log" 2>&1 &
  SHARD_PIDS+=($!)
done
for i in 1 2; do
  A=""
  for _ in $(seq 1 100); do
    A="$(sed -n 's/^wisegraph-shard listening on //p' "$SMOKE/tcpshard$i.log")"
    [ -n "$A" ] && break
    sleep 0.1
  done
  [ -n "$A" ] || { echo "FAIL: shard daemon $i did not start"; cat "$SMOKE/tcpshard$i.log"; exit 1; }
  SHARD_ADDRS+=("$A")
done
"$SMOKE/wisegraph-serve" -dataset AR -scale 400 -checkpoint "$SMOKE/model.ckpt" \
  -addr 127.0.0.1:0 -shard-addrs "${SHARD_ADDRS[0]},${SHARD_ADDRS[1]}" \
  >"$SMOKE/tcprouter.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's#.*listening on http://##p' "$SMOKE/tcprouter.log")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: TCP router did not start"; cat "$SMOKE/tcprouter.log"; exit 1; }
"$SMOKE/wisegraph-serve" -dataset AR -scale 400 -checkpoint "$SMOKE/model.ckpt" \
  -addr 127.0.0.1:0 >"$SMOKE/tcpref.log" 2>&1 &
REF_PID=$!
REF_ADDR=""
for _ in $(seq 1 100); do
  REF_ADDR="$(sed -n 's#.*listening on http://##p' "$SMOKE/tcpref.log")"
  [ -n "$REF_ADDR" ] && break
  sleep 0.1
done
[ -n "$REF_ADDR" ] || { echo "FAIL: reference serve did not start"; cat "$SMOKE/tcpref.log"; exit 1; }
REQ='{"nodes":[0,7,42,100,311],"logits":true}'
logits_of() { curl -sf "http://$1/predict" -d "$REQ" | sed -n 's/.*"logits":\(.*\),"latencyMs".*/\1/p'; }
TCP_LOGITS="$(logits_of "$ADDR")"
REF_LOGITS="$(logits_of "$REF_ADDR")"
[ -n "$TCP_LOGITS" ] || { echo "FAIL: TCP router returned no logits"; cat "$SMOKE/tcprouter.log"; exit 1; }
[ "$TCP_LOGITS" = "$REF_LOGITS" ] \
  || { echo "FAIL: TCP logits differ from single-node"; echo "tcp: $TCP_LOGITS"; echo "ref: $REF_LOGITS"; exit 1; }
kill -TERM "$REF_PID" && wait "$REF_PID" \
  || { echo "FAIL: reference serve exited non-zero"; cat "$SMOKE/tcpref.log"; exit 1; }
kill -TERM "$SERVE_PID" && wait "$SERVE_PID" \
  || { echo "FAIL: TCP router exited non-zero"; cat "$SMOKE/tcprouter.log"; exit 1; }
SERVE_PID=""
grep -q 'drained: in-flight=0' "$SMOKE/tcprouter.log" \
  || { echo "FAIL: TCP router drain left requests in flight"; cat "$SMOKE/tcprouter.log"; exit 1; }
for i in 1 2; do
  kill -TERM "${SHARD_PIDS[$((i-1))]}"
  wait "${SHARD_PIDS[$((i-1))]}" \
    || { echo "FAIL: shard daemon $i exited non-zero"; cat "$SMOKE/tcpshard$i.log"; exit 1; }
  grep -q 'drained: in-flight=0' "$SMOKE/tcpshard$i.log" \
    || { echo "FAIL: shard daemon $i drain left RPCs in flight"; cat "$SMOKE/tcpshard$i.log"; exit 1; }
done
echo "TCP sharded serving smoke OK"

# Replica chaos smoke: 2 spans x 2 replicas of wisegraph-shard daemons,
# a router with -replicas 2, real bench load, and one replica SIGKILLed
# mid-run. The bench must finish with zero errors, logits after the kill
# must equal logits before it, a survivor's /metrics must scrape as text
# exposition 0.0.4, and router + all three survivors must drain to
# in-flight=0 (the killed daemon, by definition, drains nothing).
echo "== replica failover smoke (2x2 daemons, SIGKILL one mid-load)"
RSHARD_PIDS=()
RSHARD_ADDRS=()
for i in 1 2 3 4; do
  "$SMOKE/wisegraph-shard" -dataset AR -scale 400 -checkpoint "$SMOKE/model.ckpt" \
    -addr 127.0.0.1:0 -metrics-addr 127.0.0.1:0 >"$SMOKE/rshard$i.log" 2>&1 &
  RSHARD_PIDS+=($!)
done
for i in 1 2 3 4; do
  A=""
  for _ in $(seq 1 100); do
    A="$(sed -n 's/^wisegraph-shard listening on //p' "$SMOKE/rshard$i.log")"
    [ -n "$A" ] && break
    sleep 0.1
  done
  [ -n "$A" ] || { echo "FAIL: replica daemon $i did not start"; cat "$SMOKE/rshard$i.log"; exit 1; }
  RSHARD_ADDRS+=("$A")
done
"$SMOKE/wisegraph-serve" -dataset AR -scale 400 -checkpoint "$SMOKE/model.ckpt" \
  -addr 127.0.0.1:0 -replicas 2 \
  -shard-addrs "${RSHARD_ADDRS[0]},${RSHARD_ADDRS[1]},${RSHARD_ADDRS[2]},${RSHARD_ADDRS[3]}" \
  >"$SMOKE/rrouter.log" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's#.*listening on http://##p' "$SMOKE/rrouter.log")"
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: replica router did not start"; cat "$SMOKE/rrouter.log"; exit 1; }
grep -q 'sharded tier: 2 shards x 2 replicas' "$SMOKE/rrouter.log" \
  || { echo "FAIL: router did not build a 2x2 fleet"; cat "$SMOKE/rrouter.log"; exit 1; }
PRE_LOGITS="$(logits_of "$ADDR")"
[ -n "$PRE_LOGITS" ] || { echo "FAIL: replica router returned no logits"; cat "$SMOKE/rrouter.log"; exit 1; }
"$SMOKE/wgserve-bench" -url "http://$ADDR" -clients 8 -duration 2s -zipf 1.2 \
  >"$SMOKE/rbench.txt" 2>&1 &
BENCH_PID=$!
sleep 0.7
kill -9 "${RSHARD_PIDS[1]}" 2>/dev/null || true  # span 0, replica 1
wait "$BENCH_PID" \
  || { echo "FAIL: bench failed across the replica kill"; cat "$SMOKE/rbench.txt"; exit 1; }
grep -Eq ' err=0 ' "$SMOKE/rbench.txt" \
  || { echo "FAIL: requests errored across the replica kill"; cat "$SMOKE/rbench.txt"; exit 1; }
grep -Eq ' shard-failures=0( |$)' "$SMOKE/rbench.txt" \
  || { echo "FAIL: replica failover surfaced a shard failure"; cat "$SMOKE/rbench.txt"; exit 1; }
RQPS="$(sed -n 's/.* qps=\([0-9.]*\).*/\1/p' "$SMOKE/rbench.txt" | head -1)"
awk -v q="$RQPS" 'BEGIN { exit !(q + 0 > 0) }' \
  || { echo "FAIL: replica bench reported no throughput"; cat "$SMOKE/rbench.txt"; exit 1; }
echo "replica bench across SIGKILL: qps=$RQPS"
POST_LOGITS="$(logits_of "$ADDR")"
[ "$PRE_LOGITS" = "$POST_LOGITS" ] \
  || { echo "FAIL: logits changed after replica kill"; echo "pre:  $PRE_LOGITS"; echo "post: $POST_LOGITS"; exit 1; }
# A survivor's /metrics endpoint: valid exposition content type, the
# daemon-side RPC counters present, no negative values.
MADDR="$(sed -n 's/^wisegraph-shard metrics on //p' "$SMOKE/rshard1.log")"
[ -n "$MADDR" ] || { echo "FAIL: survivor reported no metrics address"; cat "$SMOKE/rshard1.log"; exit 1; }
curl -sf -D "$SMOKE/rmetrics.hdr" "http://$MADDR/metrics" >"$SMOKE/rmetrics.txt" \
  || { echo "FAIL: survivor /metrics scrape failed"; exit 1; }
grep -qi 'content-type: *text/plain; *version=0.0.4' "$SMOKE/rmetrics.hdr" \
  || { echo "FAIL: /metrics Content-Type is not exposition 0.0.4"; cat "$SMOKE/rmetrics.hdr"; exit 1; }
for metric in wisegraph_shard_id wisegraph_shard_replica wisegraph_shard_rpcs_total \
  wisegraph_shard_bytes_in_total wisegraph_shard_in_flight \
  wisegraph_shard_rpc_duration_seconds_count; do
  grep -q "^$metric" "$SMOKE/rmetrics.txt" \
    || { echo "FAIL: shard /metrics missing $metric"; cat "$SMOKE/rmetrics.txt"; exit 1; }
done
awk '/^# TYPE /      { typed[$3] = 1; next }
  /^#/ || NF == 0    { next }
  { name = $1; sub(/\{.*/, "", name); v = $NF
    base = name; sub(/_(bucket|sum|count)$/, "", base)
    if (!(name in typed) && !(base in typed)) { print "sample without TYPE: " $0; bad = 1 }
    if (v != "+Inf" && v != "NaN" && v + 0 < 0) { print "negative metric: " $0; bad = 1 } }
  END { exit bad }' "$SMOKE/rmetrics.txt" \
  || { echo "FAIL: shard /metrics is not valid exposition"; exit 1; }
curl -sf "http://$MADDR/healthz" | grep -q ok \
  || { echo "FAIL: survivor /healthz not ok"; exit 1; }
kill -TERM "$SERVE_PID" && wait "$SERVE_PID" \
  || { echo "FAIL: replica router exited non-zero"; cat "$SMOKE/rrouter.log"; exit 1; }
SERVE_PID=""
grep -q 'drained: in-flight=0' "$SMOKE/rrouter.log" \
  || { echo "FAIL: replica router drain left requests in flight"; cat "$SMOKE/rrouter.log"; exit 1; }
for i in 1 3 4; do  # daemon 2 was SIGKILLed
  kill -TERM "${RSHARD_PIDS[$((i-1))]}"
  wait "${RSHARD_PIDS[$((i-1))]}" \
    || { echo "FAIL: replica daemon $i exited non-zero"; cat "$SMOKE/rshard$i.log"; exit 1; }
  grep -q 'drained: in-flight=0' "$SMOKE/rshard$i.log" \
    || { echo "FAIL: replica daemon $i drain left RPCs in flight"; cat "$SMOKE/rshard$i.log"; exit 1; }
  grep -q 'replica=' "$SMOKE/rshard$i.log" \
    || { echo "FAIL: replica daemon $i drain line has no replica identity"; cat "$SMOKE/rshard$i.log"; exit 1; }
done
echo "replica failover smoke OK"

# Kill/restart resume smoke: a training run with per-epoch
# auto-checkpoints is killed (-9) mid-run, then restarted with -resume.
# The resumed run must pick up from the checkpoint and land on a final
# epoch whose loss/val/test are bit-identical to an uninterrupted
# reference run. The killed run is slowed by an injected per-epoch
# latency fault (sleep only — latency draws never change numerics) so
# the kill reliably lands mid-training on any machine.
echo "== kill/restart resume smoke"
TRAIN_ARGS=(-dataset AR -scale 400 -epochs 8 -hidden 16 -layers 2)
"$SMOKE/wisegraph-train" "${TRAIN_ARGS[@]}" >"$SMOKE/ref.log"
"$SMOKE/wisegraph-train" "${TRAIN_ARGS[@]}" \
  -auto-checkpoint "$SMOKE/state.wsgt" -checkpoint-every 1 \
  -fault-spec 'seed=1;train.step:latency=1,delay=200ms' \
  >"$SMOKE/killed.log" 2>&1 &
TRAIN_PID=$!
sleep 0.6
kill -9 "$TRAIN_PID" 2>/dev/null || true
wait "$TRAIN_PID" 2>/dev/null || true
[ -f "$SMOKE/state.wsgt" ] \
  || { echo "FAIL: no auto-checkpoint on disk after kill"; exit 1; }
"$SMOKE/wisegraph-train" "${TRAIN_ARGS[@]}" \
  -auto-checkpoint "$SMOKE/state.wsgt" -resume >"$SMOKE/resumed.log"
grep -q 'resumed from epoch' "$SMOKE/resumed.log" \
  || { echo "FAIL: restart did not resume from the checkpoint"; cat "$SMOKE/resumed.log"; exit 1; }
# Compare the final epoch line minus the (timing-dependent) duration.
last_epoch() { grep '^epoch' "$1" | tail -1 | awk '{print $1,$2,$3,$4,$5,$6,$7,$8}'; }
REF_LAST="$(last_epoch "$SMOKE/ref.log")"
RES_LAST="$(last_epoch "$SMOKE/resumed.log")"
[ -n "$REF_LAST" ] && [ "$REF_LAST" = "$RES_LAST" ] \
  || { echo "FAIL: resumed trajectory diverged"; echo "ref: $REF_LAST"; echo "got: $RES_LAST"; exit 1; }
echo "kill/restart resume OK"

echo "OK"
