#!/usr/bin/env bash
# Repository health check: vet, build, and the full test suite under the
# race detector. CI and pre-commit both run this; it must stay fast enough
# to run on every change (a few minutes on one core).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# The parallel execution substrate (radix/stamped partitioner, segmented
# scans, concurrent joint search) must be byte-identical to the sequential
# reference at every pool width. Re-run the parity and determinism suites
# under the race detector at both scheduler extremes.
NPROC="$(getconf _NPROCESSORS_ONLN)"
PARITY='Parity|Determin|Reuse|Concurrent'
echo "== parity/determinism under -race (GOMAXPROCS=1)"
GOMAXPROCS=1 go test -race -count=1 -run "$PARITY" \
  ./internal/core/ ./internal/graph/ ./internal/joint/

echo "== parity/determinism under -race (GOMAXPROCS=$NPROC)"
GOMAXPROCS="$NPROC" go test -race -count=1 -run "$PARITY" \
  ./internal/core/ ./internal/graph/ ./internal/joint/

echo "OK"
