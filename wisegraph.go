// Package wisegraph is the public API of the WiseGraph reproduction — a
// GNN training framework that jointly partitions graph data and GNN
// operations through the gTask abstraction (Huang et al., EuroSys 2024).
//
// The typical flow mirrors the paper's end-to-end workflow (Figure 4):
//
//	ds, _ := wisegraph.LoadDataset("AR", wisegraph.DatasetOptions{})
//	tr, _ := wisegraph.NewTrainer(ds, wisegraph.ModelConfig{Kind: wisegraph.SAGE, Hidden: 64, Layers: 3}, 0.01)
//	plan := tr.Tune(wisegraph.A100())        // joint optimization: graph + operation partition
//	stats := tr.Run(100)                     // full-graph training
//	acc, _ := tr.GTaskTestAccuracy(plan)     // evaluate through the gTask executor
//
// The heavy lifting lives in internal packages: internal/core (gTasks and
// the greedy partitioner), internal/opt (DFG transformations),
// internal/kernels (batched micro-kernel execution + cost model),
// internal/joint (outlier scheduling and the plan search), internal/dist
// (multi-device placement) and internal/bench (every paper table/figure).
package wisegraph

import (
	"io"
	"net/http"

	"wisegraph/internal/bench"
	"wisegraph/internal/core"
	"wisegraph/internal/dataset"
	"wisegraph/internal/device"
	"wisegraph/internal/dist"
	"wisegraph/internal/graph"
	"wisegraph/internal/joint"
	"wisegraph/internal/nn"
	"wisegraph/internal/serve"
	"wisegraph/internal/train"
)

// ModelKind identifies one of the five evaluated GNN models.
type ModelKind = nn.ModelKind

// The evaluated models (paper §7.1).
const (
	GCN      = nn.GCN
	SAGE     = nn.SAGE
	SAGELSTM = nn.SAGELSTM
	GAT      = nn.GAT
	RGCN     = nn.RGCN
)

// ParseModel resolves a model name ("GCN", "SAGE", "SAGE-LSTM", "GAT",
// "RGCN").
func ParseModel(name string) (ModelKind, error) { return nn.ParseModel(name) }

// Graph is a directed multigraph in COO form (see internal/graph).
type Graph = graph.Graph

// Dataset bundles a graph with features, labels and splits.
type Dataset = dataset.Dataset

// DatasetOptions control dataset materialization.
type DatasetOptions = dataset.Options

// LoadDataset materializes one of the paper's Table 1 datasets (AR, PR,
// RE, PA-S, FS-S, PA, FS) as a scaled synthetic replica.
func LoadDataset(name string, opts DatasetOptions) (*Dataset, error) {
	return dataset.Load(name, opts)
}

// DatasetNames lists the available datasets.
func DatasetNames() []string {
	names := make([]string, len(dataset.Specs))
	for i, s := range dataset.Specs {
		names[i] = s.Name
	}
	return names
}

// ModelConfig configures a model (see internal/nn.Config).
type ModelConfig = nn.Config

// Model is a GNN model: a stack of graph-convolution layers with
// checkpoint save/load (v2 checkpoints embed the ModelConfig).
type Model = nn.Model

// LoadModelFromCheckpoint reconstructs a model from a v2 checkpoint alone
// (the artifact written by Model.SaveCheckpoint or
// `wisegraph-train -save-checkpoint`).
func LoadModelFromCheckpoint(r io.Reader) (*Model, error) {
	return nn.LoadModelFromCheckpoint(r)
}

// Trainer trains a model on a full graph.
type Trainer = train.FullGraph

// NewTrainer builds a full-graph trainer; InDim/OutDim/NumTypes default
// from the dataset.
func NewTrainer(ds *Dataset, cfg ModelConfig, lr float64) (*Trainer, error) {
	return train.NewFullGraph(ds, cfg, lr)
}

// SampledTrainer trains on neighbor-sampled mini-batches.
type SampledTrainer = train.Sampled

// NewSampledTrainer builds a sampled-graph trainer with the given fan-outs
// (the paper uses 20-15-10) and batch size.
func NewSampledTrainer(ds *Dataset, cfg ModelConfig, lr float64, fanouts []int, batch int, seed uint64) (*SampledTrainer, error) {
	return train.NewSampled(ds, cfg, lr, fanouts, batch, seed)
}

// DeviceSpec describes the simulated accelerator.
type DeviceSpec = device.Spec

// A100 returns the paper's evaluation GPU model.
func A100() DeviceSpec { return device.A100() }

// ExecutionPlan is the outcome of joint optimization: the selected graph
// partition plan, operation partition plan, outlier classification and
// search trace.
type ExecutionPlan = joint.Result

// Optimize runs the joint search (paper §6) for a model over a graph:
// it enumerates graph partition plans from the model's indexing
// attributes, tunes operation partition plans per candidate using the
// gTask-level data patterns, and schedules outliers differentially.
func Optimize(g *Graph, kind ModelKind, hidden, numTypes int, spec DeviceSpec) *ExecutionPlan {
	return joint.Search(g, kind, hidden, hidden, numTypes, joint.Options{Spec: spec})
}

// GraphPlan is a named set of gTask restrictions.
type GraphPlan = core.GraphPlan

// Partition applies a graph partition plan, producing gTasks with
// per-task unique-value statistics.
func Partition(g *Graph, plan GraphPlan) *core.Partition {
	return core.PartitionGraph(g, plan, []core.Attr{
		core.AttrSrcID, core.AttrDstID, core.AttrEdgeType, core.AttrDstDegree,
	})
}

// VertexCentricPlan and EdgeCentricPlan are the classic partitions,
// expressible as special cases of gTask restrictions (paper Figure 7).
func VertexCentricPlan() GraphPlan { return core.VertexCentric() }

// EdgeCentricPlan is uniq(edge-id)=1.
func EdgeCentricPlan() GraphPlan { return core.EdgeCentric() }

// ServeOptions tune the online inference engine (see internal/serve).
type ServeOptions = serve.Options

// InferenceEngine answers node-classification queries with dynamic
// micro-batching, admission control and graceful drain.
type InferenceEngine = serve.Engine

// NewInferenceEngine freezes an inference context (graph CSR, one-shot
// tuned joint plan, per-worker partitioners/RNGs/model replicas) and
// starts the serving worker pool.
func NewInferenceEngine(ds *Dataset, m *Model, opts ServeOptions) (*InferenceEngine, error) {
	return serve.NewEngine(ds, m, opts)
}

// NewServeHandler exposes an inference engine over HTTP
// (/predict, /healthz, /statsz).
func NewServeHandler(e *InferenceEngine) http.Handler {
	return serve.NewHandler(e)
}

// Cluster models a multi-device setup.
type Cluster = dist.Cluster

// NewCluster returns an n-device cluster with the paper's PCIe-4.0
// interconnect.
func NewCluster(n int) Cluster { return dist.NewCluster(n) }

// BenchConfig configures experiment reproduction.
type BenchConfig = bench.Config

// BenchTable is a printable experiment result.
type BenchTable = bench.Table

// RunExperiment reproduces one paper table or figure by id (table1,
// fig3a, fig3b, fig13, table2, fig14, fig14b, fig15, fig16, fig17, fig18,
// fig19, fig20, fig21, table3).
func RunExperiment(id string, cfg BenchConfig) (*BenchTable, error) {
	e, err := bench.Find(id)
	if err != nil {
		return nil, err
	}
	return e.Run(cfg)
}

// ExperimentIDs lists the reproducible experiments.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range bench.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// WriteExperiment runs an experiment and renders it to w.
func WriteExperiment(w io.Writer, id string, cfg BenchConfig) error {
	t, err := RunExperiment(id, cfg)
	if err != nil {
		return err
	}
	t.Fprint(w)
	return nil
}
