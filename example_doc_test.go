package wisegraph_test

import (
	"fmt"

	"wisegraph"
	"wisegraph/internal/graph"
)

// ExamplePartition shows the paper's worked example (Figure 5/7): the
// 5-vertex typed graph partitioned vertex-centrically yields one gTask per
// destination with in-edges.
func ExamplePartition() {
	g := &graph.Graph{
		NumVertices: 5,
		NumTypes:    2,
		Dst:         []int32{0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 4},
		Src:         []int32{0, 1, 0, 1, 2, 2, 3, 4, 3, 4, 0},
		Type:        []int32{0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0},
	}
	part := wisegraph.Partition(g, wisegraph.VertexCentricPlan())
	fmt.Printf("plan: %v\n", part.Plan)
	fmt.Printf("tasks: %d\n", part.NumTasks())
	for ti := 0; ti < part.NumTasks(); ti++ {
		fmt.Printf("  task %d: %d edges\n", ti, part.TaskLen(ti))
	}
	// Output:
	// plan: vertex-centric{uniq(dst-id)=1}
	// tasks: 5
	//   task 0: 2 edges
	//   task 1: 3 edges
	//   task 2: 3 edges
	//   task 3: 2 edges
	//   task 4: 1 edges
}

// ExampleEdgeCentricPlan shows the classic partitions as gTask special
// cases.
func ExampleEdgeCentricPlan() {
	fmt.Println(wisegraph.EdgeCentricPlan())
	fmt.Println(wisegraph.VertexCentricPlan())
	// Output:
	// edge-centric{uniq(edge-id)=1}
	// vertex-centric{uniq(dst-id)=1}
}

// ExampleOptimize runs the joint search on a small typed graph and prints
// what kind of plan it selects for RGCN (the paper's running example).
func ExampleOptimize() {
	ds, err := wisegraph.LoadDataset("AR", wisegraph.DatasetOptions{Scale: 400, Seed: 6})
	if err != nil {
		panic(err)
	}
	res := wisegraph.Optimize(ds.Graph, wisegraph.RGCN, 32, ds.Graph.NumTypes, wisegraph.A100())
	fmt.Printf("dedup kernels selected: %v\n", res.OpPlan.Dedup)
	fmt.Printf("edge-type restricted: %v\n", restricted(res.GraphPlan))
	// Output:
	// dedup kernels selected: true
	// edge-type restricted: true
}

func restricted(p wisegraph.GraphPlan) bool {
	for _, r := range p.Restrictions {
		if r.Attr.String() == "edge-type" {
			return true
		}
	}
	return false
}
